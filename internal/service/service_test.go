package service

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"
)

const testMaxInsts = 20_000

func testWorkloads(t *testing.T, names ...string) []*workload.Workload {
	t.Helper()
	out := make([]*workload.Workload, 0, len(names))
	for _, n := range names {
		w, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		out = append(out, w)
	}
	return out
}

func testService(t *testing.T, cfg Config, withStore bool) (*Service, *Client, *store.Store) {
	t.Helper()
	var st *store.Store
	if withStore {
		var err error
		st, err = store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
	}
	svc := New(cfg, st)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(svc.Drain)
	return svc, &Client{Base: srv.URL, Tenant: "test"}, st
}

func counterValue(reg *obs.Registry, name string) uint64 {
	var total uint64
	for _, s := range reg.Snapshot() {
		if s.Name == name && s.Value != nil {
			total += uint64(*s.Value)
		}
	}
	return total
}

// Two concurrent clients submitting the same grid must render
// byte-identical reports — equal to a local in-process run — with the
// overlap visible in the dedupe counters. This is the acceptance
// criterion of the service: shared-store memoization makes concurrent
// campaign clients cheap, not just correct.
func TestConcurrentClientsOverlapByteIdentical(t *testing.T) {
	svc, client, _ := testService(t, Config{Workers: 4}, true)
	workloads := testWorkloads(t, "li")
	configs := []cpu.Config{cpu.Conventional(2, 2), cpu.Decoupled(3, 3)}

	render := func(rows []experiments.Figure8Row) string {
		return experiments.RenderFigure8(rows, configs)
	}

	var wg sync.WaitGroup
	outs := make([]string, 2)
	errs := make([]error, 2)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &Client{Base: client.Base, Tenant: "tenant" + string(rune('A'+i))}
			rows, err := cl.Figure8(0, testMaxInsts, 1, workloads, configs)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = render(rows)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if outs[0] != outs[1] {
		t.Fatalf("concurrent clients diverge:\n%s\n--- vs ---\n%s", outs[0], outs[1])
	}

	// The same grid simulated locally must render the same bytes.
	r := experiments.NewRunner()
	r.Workloads = workloads
	r.MaxInsts = testMaxInsts
	rows, err := r.FigureWithConfigs(configs)
	if err != nil {
		t.Fatal(err)
	}
	if local := render(rows); local != outs[0] {
		t.Fatalf("server report differs from local:\n%s\n--- vs ---\n%s", outs[0], local)
	}

	// Every unit of the second grid overlapped the first.
	if got := counterValue(svc.Registry(), "service_units_deduped_total"); got < uint64(len(configs)) {
		t.Fatalf("deduped %d units, want >= %d", got, len(configs))
	}
}

// A worker dying mid-unit must not fail the job: the service-level
// retry re-runs the unit and the campaign completes.
func TestUnitRetryRecoversWorkerFailure(t *testing.T) {
	svc, client, _ := testService(t, Config{Workers: 2, Retries: 2}, true)
	var mu sync.Mutex
	crashed := map[string]bool{}
	svc.testHook = func(u *unit, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		if !crashed[u.key] {
			crashed[u.key] = true
			return errors.New("worker crashed mid-unit")
		}
		return nil
	}
	cfg := cpu.Decoupled(3, 3)
	resp, err := client.Run(CampaignRequest{
		MaxInsts: testMaxInsts, Seed: 7,
		Units: []UnitSpec{{Kind: KindSimulate, Workload: "li", Config: &cfg}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status.State != JobComplete || resp.Status.Done != 1 {
		t.Fatalf("job ended %+v, want complete", resp.Status)
	}
	if got := counterValue(svc.Registry(), "service_unit_retries_total"); got == 0 {
		t.Fatal("no retries recorded despite the injected crash")
	}
}

// Without retry budget, an injected crash is a permanent unit failure
// and the job reports it.
func TestUnitFailureWithoutRetries(t *testing.T) {
	svc, client, _ := testService(t, Config{Workers: 1}, false)
	svc.testHook = func(u *unit, attempt int) error {
		return errors.New("worker crashed mid-unit")
	}
	cfg := cpu.Conventional(2, 2)
	_, err := client.Run(CampaignRequest{
		MaxInsts: testMaxInsts,
		Units:    []UnitSpec{{Kind: KindSimulate, Workload: "li", Config: &cfg}},
	})
	if err == nil || !strings.Contains(err.Error(), "worker crashed") {
		t.Fatalf("err = %v, want the unit failure surfaced", err)
	}
}

// Cancel ends a job's pending units while the in-flight unit runs to
// completion and keeps its result.
func TestCancelPendingUnits(t *testing.T) {
	svc, client, _ := testService(t, Config{Workers: 1}, true)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.testHook = func(u *unit, attempt int) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	}
	cfg := cpu.Conventional(2, 2)
	cfg2 := cpu.Decoupled(3, 3)
	cfg3 := cpu.Decoupled(2, 2)
	status, err := client.Submit(CampaignRequest{
		MaxInsts: testMaxInsts,
		Units: []UnitSpec{
			{Kind: KindSimulate, Workload: "li", Config: &cfg},
			{Kind: KindSimulate, Workload: "li", Config: &cfg2},
			{Kind: KindSimulate, Workload: "li", Config: &cfg3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if _, err := client.Cancel(status.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	final, err := client.Wait(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobCanceled {
		t.Fatalf("job state %q, want %q", final.State, JobCanceled)
	}
	if final.Done != 1 || final.Canceled != 2 {
		t.Fatalf("done %d canceled %d, want 1 and 2: %+v", final.Done, final.Canceled, final)
	}
	resp, err := client.Results(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Units[0].Result) == 0 {
		t.Fatal("the in-flight unit's result was dropped by cancel")
	}
}

// Overflowing the queue or a tenant's quota rejects the submission
// with the typed errors the handler maps onto 429.
func TestBackpressureAndQuota(t *testing.T) {
	svc, client, _ := testService(t, Config{Workers: 1, QueueCap: 2, TenantCap: 2}, false)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.testHook = func(u *unit, attempt int) error {
		once.Do(func() { close(entered) })
		<-release
		return errors.New("still shut off")
	}
	defer close(release)

	cfg := cpu.Conventional(2, 2)
	unit1 := []UnitSpec{{Kind: KindSimulate, Workload: "li", Config: &cfg}}
	// Tenant A's unit is picked up by the lone worker, which blocks in
	// the hook; wait for that so the queue is observably empty.
	if _, err := svc.Submit(CampaignRequest{Tenant: "a", Units: unit1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("the worker never picked the first unit up")
	}
	// Two more fill the queue, then overflow.
	if _, err := svc.Submit(CampaignRequest{Tenant: "b", Units: unit1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(CampaignRequest{Tenant: "b", Units: unit1}); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Submit(CampaignRequest{Tenant: "c", Units: unit1})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Tenant B is at its quota of 2 even though the queue check comes
	// later.
	_, err = svc.Submit(CampaignRequest{Tenant: "b", Units: unit1})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	// The HTTP mapping: over-quota is 429.
	_, err = client.Submit(CampaignRequest{Tenant: "b", Units: unit1})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("err = %v, want an HTTP 429", err)
	}
}

// Drain completes the in-flight unit (its artifact lands in the store
// intact), cancels the queued ones, and marks the job interrupted.
func TestDrainGraceful(t *testing.T) {
	svc, client, st := testService(t, Config{Workers: 1}, true)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.testHook = func(u *unit, attempt int) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	}
	cfg := cpu.Conventional(2, 2)
	cfg2 := cpu.Decoupled(3, 3)
	status, err := client.Submit(CampaignRequest{
		MaxInsts: testMaxInsts,
		Units: []UnitSpec{
			{Kind: KindSimulate, Workload: "li", Config: &cfg},
			{Kind: KindSimulate, Workload: "li", Config: &cfg2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	drained := make(chan struct{})
	go func() {
		svc.Drain()
		close(drained)
	}()
	time.Sleep(20 * time.Millisecond) // let Drain close the stop channel
	close(release)
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not finish")
	}

	j, ok := svc.Job(status.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	final := svc.status(j)
	if final.State != JobInterrupted {
		t.Fatalf("job state %q, want %q: %+v", final.State, JobInterrupted, final)
	}
	if final.Done != 1 || final.Canceled != 1 {
		t.Fatalf("done %d canceled %d, want 1 and 1", final.Done, final.Canceled)
	}
	// The completed unit's artifacts flushed cleanly: nothing
	// quarantined, and a submission after drain is refused.
	if n, err := st.Quarantined(); err != nil || n != 0 {
		t.Fatalf("quarantined %d (%v), want 0", n, err)
	}
	_, err = svc.Submit(CampaignRequest{Units: []UnitSpec{{Kind: KindSimulate, Workload: "li", Config: &cfg}}})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

// The grid shorthand expands workloads × configs, validates names, and
// rejects empty campaigns.
func TestExpandGrid(t *testing.T) {
	units, err := expand(CampaignRequest{Workloads: []string{"li", "go"}, Configs: []string{"(2+0)", "(3+3)"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 4 {
		t.Fatalf("got %d units, want 4", len(units))
	}
	if units[0].Config == nil || units[0].Config.Name != "(2+0)" {
		t.Fatalf("unit 0 config %+v", units[0].Config)
	}
	if _, err := expand(CampaignRequest{Workloads: []string{"nope"}, Configs: []string{"(2+0)"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := expand(CampaignRequest{Configs: []string{"(0+9)"}}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := expand(CampaignRequest{}); err == nil {
		t.Fatal("empty campaign accepted")
	}
	if _, err := expand(CampaignRequest{Units: []UnitSpec{{Kind: KindSimulate, Workload: "li"}}}); err == nil {
		t.Fatal("simulate unit without config accepted")
	}
}

// The metrics endpoint publishes queue/dedupe/tenant counters and the
// store's counters, and repeated scrapes do not double-count the
// store's published totals.
func TestMetricsEndpointStable(t *testing.T) {
	svc, client, _ := testService(t, Config{Workers: 2}, true)
	cfg := cpu.Conventional(2, 2)
	if _, err := client.Run(CampaignRequest{
		MaxInsts: testMaxInsts,
		Units:    []UnitSpec{{Kind: KindSimulate, Workload: "li", Config: &cfg}},
	}); err != nil {
		t.Fatal(err)
	}
	scrape := func() string {
		var b strings.Builder
		if err := svc.WriteMetrics(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := scrape()
	for _, want := range []string{"service_units_total", "service_jobs_total", "harness_store_writes_total"} {
		if !strings.Contains(first, want) {
			t.Fatalf("metrics missing %s:\n%s", want, first)
		}
	}
	if second := scrape(); second != first {
		t.Fatalf("idle rescrape changed the metrics:\n%s\n--- vs ---\n%s", first, second)
	}
}

// A job canceled while its only unit is mid-attempt must end that unit
// as Canceled without running another attempt: the retry closure
// consults its context before starting fresh work, so cancellation is
// never burned as a retryable failure.
func TestCancelDuringAttemptStopsRetries(t *testing.T) {
	svc, client, _ := testService(t, Config{Workers: 1, Retries: 3}, false)
	var mu sync.Mutex
	attempts := 0
	entered := make(chan struct{})
	svc.testHook = func(u *unit, attempt int) error {
		mu.Lock()
		attempts++
		mu.Unlock()
		if attempt == 1 {
			close(entered)
			<-u.job.ctx.Done()
			return u.job.ctx.Err()
		}
		return errors.New("attempt started after cancel")
	}
	cfg := cpu.Conventional(2, 2)
	status, err := client.Submit(CampaignRequest{
		MaxInsts: testMaxInsts,
		Units:    []UnitSpec{{Kind: KindSimulate, Workload: "li", Config: &cfg}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if _, err := client.Cancel(status.ID); err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobCanceled {
		t.Fatalf("job state %q, want %q", final.State, JobCanceled)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Fatalf("%d attempts ran, want 1: cancellation must not trigger retries", attempts)
	}
}
