package fleet

import (
	"errors"
	"reflect"
	"testing"
)

// Tokens are minted strictly increasing and survive a fence floor
// raise; lease IDs are a pure function of the token.
func TestGrantTokensMonotonic(t *testing.T) {
	tb := NewTable(10)
	a := tb.Grant("w1", "ua")
	b := tb.Grant("w2", "ub")
	if b.Token <= a.Token {
		t.Fatalf("tokens not increasing: %d then %d", a.Token, b.Token)
	}
	if a.ID == b.ID {
		t.Fatalf("duplicate lease ID %s", a.ID)
	}
	tb.SetFence(100)
	c := tb.Grant("w1", "uc")
	if c.Token != 101 {
		t.Fatalf("token after SetFence(100) = %d, want 101", c.Token)
	}
	tb.SetFence(5) // lowering is a no-op
	if d := tb.Grant("w1", "ud"); d.Token != 102 {
		t.Fatalf("token after no-op SetFence = %d, want 102", d.Token)
	}
}

func TestExpiryAndRenew(t *testing.T) {
	tb := NewTable(10)
	l := tb.Grant("w1", "unit") // clock 1, deadline 11
	if got := tb.Advance(9); len(got) != 0 {
		t.Fatalf("expired early at tick %d: %v", tb.Now(), got)
	}
	// A renewal pushes the deadline out from the current clock.
	if _, err := tb.Renew(l.ID, l.Token); err != nil { // clock 11, deadline 21
		t.Fatal(err)
	}
	if got := tb.Advance(9); len(got) != 0 { // clock 20
		t.Fatalf("expired despite renewal: %v", got)
	}
	got := tb.Advance(1) // clock 21 >= deadline
	if len(got) != 1 || got[0].Unit != "unit" || got[0].Worker != "w1" {
		t.Fatalf("expiry = %+v, want the renewed lease", got)
	}
	// Expired means gone: renew and complete now miss.
	if _, err := tb.Renew(l.ID, l.Token); !errors.Is(err, ErrNoLease) {
		t.Fatalf("renew after expiry = %v, want ErrNoLease", err)
	}
	if _, err := tb.Complete(l.ID, l.Token); !errors.Is(err, ErrNoLease) {
		t.Fatalf("complete after expiry = %v, want ErrNoLease", err)
	}
}

// The zombie-writer scenario in miniature: a lease expires, the unit
// is regranted under a bigger token, and the original holder's
// completion is fenced while the new holder's succeeds exactly once.
func TestFencingRejectsZombie(t *testing.T) {
	tb := NewTable(5)
	old := tb.Grant("zombie", "unit")
	if exp := tb.Advance(tb.TTL()); len(exp) != 1 {
		t.Fatalf("expected 1 expiry, got %v", exp)
	}
	fresh := tb.Grant("healthy", "unit")
	if fresh.Token <= old.Token {
		t.Fatalf("regrant token %d not past old %d", fresh.Token, old.Token)
	}

	// The zombie comes back with its stale identity.
	if _, err := tb.Complete(old.ID, old.Token); !errors.Is(err, ErrNoLease) {
		t.Fatalf("zombie complete = %v, want ErrNoLease", err)
	}
	// A zombie guessing the live ID still fails the token check.
	if _, err := tb.Complete(fresh.ID, old.Token); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-token complete = %v, want ErrFenced", err)
	}
	u, err := tb.Complete(fresh.ID, fresh.Token)
	if err != nil || u != "unit" {
		t.Fatalf("fresh complete = %v, %v", u, err)
	}
	// Exactly once: the winner cannot double-complete either.
	if _, err := tb.Complete(fresh.ID, fresh.Token); !errors.Is(err, ErrNoLease) {
		t.Fatalf("double complete = %v, want ErrNoLease", err)
	}
}

func TestWorkersGaugeAndDrain(t *testing.T) {
	tb := NewTable(100)
	tb.Grant("w1", 1)
	tb.Grant("w1", 2)
	tb.Grant("w2", 3)
	if got := tb.Workers(); got != 2 {
		t.Fatalf("Workers() = %d, want 2", got)
	}
	if got := tb.Active(); got != 3 {
		t.Fatalf("Active() = %d, want 3", got)
	}
	drained := tb.DrainAll()
	if len(drained) != 3 {
		t.Fatalf("DrainAll() = %d leases, want 3", len(drained))
	}
	for i := 1; i < len(drained); i++ {
		if drained[i].Token <= drained[i-1].Token {
			t.Fatalf("drain order not token-sorted: %+v", drained)
		}
	}
	if tb.Active() != 0 || tb.Workers() != 0 {
		t.Fatal("table not empty after DrainAll")
	}
}

// Determinism: two tables fed the identical call sequence agree on
// every observable — the property that makes fleet testable by replay.
func TestDeterministicReplay(t *testing.T) {
	type obs struct {
		Grants  []Lease
		Expired [][]Lease
		Fence   uint64
		Now     uint64
	}
	play := func() obs {
		tb := NewTable(3)
		var o obs
		for i := 0; i < 6; i++ {
			o.Grants = append(o.Grants, tb.Grant("w", i))
			o.Expired = append(o.Expired, tb.Advance(uint64(i%3)))
		}
		tb.Renew(o.Grants[5].ID, o.Grants[5].Token)
		o.Expired = append(o.Expired, tb.Advance(4))
		o.Fence, o.Now = tb.Fence(), tb.Now()
		return o
	}
	a, b := play(), play()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestRetract(t *testing.T) {
	tb := NewTable(10)
	l := tb.Grant("w1", "unit")
	tb.Retract(l.ID)
	if _, err := tb.Renew(l.ID, l.Token); !errors.Is(err, ErrNoLease) {
		t.Fatalf("renew after retract = %v, want ErrNoLease", err)
	}
	// The token is burned, not reused.
	if next := tb.Grant("w1", "u2"); next.Token != l.Token+1 {
		t.Fatalf("token after retract = %d, want %d", next.Token, l.Token+1)
	}
}
