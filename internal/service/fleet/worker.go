package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the worker's wall-clock knobs. The worker side is free
// to use real time — determinism lives in the coordinator's lease
// clock and in the simulation itself, not in worker pacing.
const (
	DefaultRenewEvery = 2 * time.Second
	DefaultPoll       = 500 * time.Millisecond
)

// Execute runs one leased unit and returns the JSON result to publish.
// The context is canceled when the worker shuts down; execution errors
// are published as failed completions.
type Execute func(ctx context.Context, g LeaseGrant) (json.RawMessage, error)

// Worker pulls units from a coordinator under leases and executes them.
// Zero-value durations select the defaults above.
type Worker struct {
	Coordinator string // base URL, e.g. http://host:8080
	ID          string // worker identity reported in lease requests
	Execute     Execute
	HTTP        *http.Client  // nil = http.DefaultClient
	RenewEvery  time.Duration // heartbeat period
	Poll        time.Duration // sleep when the queue is empty or the coordinator is away
	Parallel    int           // concurrent leases (<= 0 means 1)
	Log         io.Writer     // nil = quiet

	// Counters, readable while running (Stats) — handy for smoke tests
	// and the shutdown log line.
	leased    atomic.Uint64
	completed atomic.Uint64
	fenced    atomic.Uint64
	failed    atomic.Uint64
}

// Stats is a point-in-time snapshot of the worker's counters.
type Stats struct {
	Leased    uint64
	Completed uint64
	Fenced    uint64 // completions rejected by the coordinator's fence
	Failed    uint64 // units whose Execute returned an error
}

// Stats returns the current counter values.
func (w *Worker) Stats() Stats {
	return Stats{
		Leased:    w.leased.Load(),
		Completed: w.completed.Load(),
		Fenced:    w.fenced.Load(),
		Failed:    w.failed.Load(),
	}
}

func (w *Worker) client() *http.Client {
	if w.HTTP != nil {
		return w.HTTP
	}
	return http.DefaultClient
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "arlworker: "+format+"\n", args...)
	}
}

// Run pulls and executes units until ctx is canceled. It returns nil
// on a clean shutdown; coordinator unavailability is retried forever
// (the fleet outlives coordinator restarts by design).
func (w *Worker) Run(ctx context.Context) error {
	n := w.Parallel
	if n <= 0 {
		n = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(ctx)
		}()
	}
	wg.Wait()
	s := w.Stats()
	w.logf("%s done: %d leased, %d completed, %d failed, %d fenced",
		w.ID, s.Leased, s.Completed, s.Failed, s.Fenced)
	return nil
}

func (w *Worker) loop(ctx context.Context) {
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	for {
		if ctx.Err() != nil {
			return
		}
		g, ok, err := w.lease(ctx)
		if err != nil {
			w.logf("%s lease: %v", w.ID, err)
		}
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-time.After(poll):
			}
			continue
		}
		w.leased.Add(1)
		w.runUnit(ctx, g)
	}
}

// runUnit executes one granted unit with a heartbeat alongside and
// publishes the completion. A failing heartbeat does NOT abort the
// execution: the lease may already be fenced, but the authoritative
// answer comes from the completion attempt — if we lost the unit, the
// coordinator rejects it there and we move on. Aborting locally would
// just waste the work when the heartbeat failure was a transient
// network fault.
func (w *Worker) runUnit(ctx context.Context, g LeaseGrant) {
	hbCtx, stopHB := context.WithCancel(ctx)
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		w.heartbeat(hbCtx, g)
	}()

	result, execErr := w.Execute(ctx, g)
	stopHB()
	hb.Wait()
	if ctx.Err() != nil && execErr != nil {
		// Shutdown mid-unit: publish nothing; the lease expires and the
		// coordinator requeues the unit.
		return
	}

	req := CompleteRequest{Worker: w.ID, Token: g.Token, State: StateDoneWire, Result: result}
	if execErr != nil {
		req.State = StateFailedWire
		req.Error = execErr.Error()
		w.failed.Add(1)
	}
	w.complete(ctx, g, req)
}

// Wire spellings of the two terminal unit states a worker can publish
// (mirrors the service's StateDone/StateFailed).
const (
	StateDoneWire   = "done"
	StateFailedWire = "failed"
)

func (w *Worker) heartbeat(ctx context.Context, g LeaseGrant) {
	every := w.RenewEvery
	if every <= 0 {
		every = DefaultRenewEvery
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		code, err := w.post(ctx, fmt.Sprintf("/api/v1/lease/%s/renew", g.LeaseID),
			RenewRequest{Worker: w.ID, Token: g.Token}, nil)
		switch {
		case err != nil:
			w.logf("%s renew %s: %v", w.ID, g.LeaseID, err)
		case code == http.StatusOK:
		default:
			// Lease gone or fenced: stop heartbeating, keep executing —
			// the completion attempt settles ownership.
			w.logf("%s renew %s: lost (%d)", w.ID, g.LeaseID, code)
			return
		}
	}
}

// complete publishes the result, retrying transport errors until ctx
// dies: an unpublished finished unit costs a whole re-execution
// elsewhere, so it is worth being stubborn. A 4xx answer is final —
// 409 means we were fenced (someone else owns the unit now).
func (w *Worker) complete(ctx context.Context, g LeaseGrant, req CompleteRequest) {
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	for {
		code, err := w.post(ctx, fmt.Sprintf("/api/v1/lease/%s/complete", g.LeaseID), req, nil)
		switch {
		case err == nil && code == http.StatusOK:
			w.completed.Add(1)
			return
		case err == nil && code >= 400 && code < 500:
			w.fenced.Add(1)
			w.logf("%s complete %s: fenced (%d), unit %s[%d] belongs to someone else",
				w.ID, g.LeaseID, code, g.Job, g.Unit)
			return
		case err != nil:
			w.logf("%s complete %s: %v (retrying)", w.ID, g.LeaseID, err)
		default:
			w.logf("%s complete %s: HTTP %d (retrying)", w.ID, g.LeaseID, code)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(poll):
		}
	}
}

// lease asks the coordinator for one unit. ok is false when no unit is
// available (empty queue, coordinator draining or unreachable).
func (w *Worker) lease(ctx context.Context) (LeaseGrant, bool, error) {
	var g LeaseGrant
	code, err := w.post(ctx, "/api/v1/lease", LeaseRequest{Worker: w.ID}, &g)
	if err != nil {
		return LeaseGrant{}, false, err
	}
	switch code {
	case http.StatusOK:
		return g, true, nil
	case http.StatusNoContent:
		return LeaseGrant{}, false, nil
	default:
		return LeaseGrant{}, false, fmt.Errorf("lease: HTTP %d", code)
	}
}

// post sends a JSON body and decodes a JSON reply into out (when out
// is non-nil and the status is 200). It returns the status code; a
// non-nil error means the exchange itself failed (transport).
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}
