package fleet

import "encoding/json"

// Wire types for the lease API:
//
//	POST /api/v1/lease               LeaseRequest  -> LeaseGrant | 204
//	POST /api/v1/lease/{id}/renew    RenewRequest  -> RenewReply
//	POST /api/v1/lease/{id}/complete CompleteRequest -> 200 | 409
//
// A 204 from lease means the queue is empty right now; 409 from renew
// or complete means the lease is gone or fenced and the worker should
// abandon the unit — someone else owns it.

// LeaseRequest is a worker's pull for one unit.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseGrant is the coordinator's answer: one leased unit plus the
// run parameters the worker needs to execute it identically to an
// in-process worker.
type LeaseGrant struct {
	LeaseID string `json:"lease_id"`
	Token   uint64 `json:"token"`
	TTL     uint64 `json:"ttl"` // lease-clock ticks until expiry without renew

	Job      string          `json:"job"`
	Unit     int             `json:"unit"` // index within the job
	Spec     json.RawMessage `json:"spec"` // service.UnitSpec
	Scale    int             `json:"scale,omitempty"`
	MaxInsts uint64          `json:"max_insts,omitempty"`
}

// RenewRequest heartbeats a lease.
type RenewRequest struct {
	Worker string `json:"worker"`
	Token  uint64 `json:"token"`
}

// RenewReply acknowledges a renewal.
type RenewReply struct {
	Deadline uint64 `json:"deadline"` // lease-clock tick of the new expiry
}

// CompleteRequest publishes a unit result under the fencing token.
type CompleteRequest struct {
	Worker string          `json:"worker"`
	Token  uint64          `json:"token"`
	State  string          `json:"state"` // "done" or "failed"
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}
