// Package fleet is the lease layer that turns arld into a coordinator
// for remote workers. The coordinator hands each campaign unit to a
// worker under a time-bounded lease carrying a monotonically increasing
// fencing token; the worker heartbeats to keep the lease alive and
// attaches the token when it publishes the result. A worker that goes
// quiet — crashed, partitioned, or paused — loses its lease after TTL
// ticks and the unit is handed to someone else under a larger token;
// if the original worker later wakes up and tries to publish (the
// classic zombie writer), its stale token no longer matches and the
// completion is rejected, so a reassigned unit can never be clobbered.
//
// Time here is a logical lease clock, not the wall clock: it advances
// by one on every lease-API arrival (grant, renew, complete) and by
// explicit Advance calls that the serving binary drives from its own
// ticker. That keeps the package deterministic — a test replays an
// exact arrival/tick sequence and gets the exact same grants, expiries
// and fence decisions — in the same way resilience.Breaker counts its
// cooldown in arrivals rather than seconds.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultTTL is the lease lifetime in lease-clock ticks when the Table
// is built with ttl <= 0. With arld's default 500ms tick this is about
// a minute of real time, long enough to ride out a GC pause or a
// transient partition but short enough that a dead worker's units
// requeue promptly.
const DefaultTTL = 120

var (
	// ErrNoLease reports an unknown (or already expired/completed)
	// lease ID.
	ErrNoLease = errors.New("fleet: no such lease")
	// ErrFenced reports a fencing-token mismatch: the lease was
	// reassigned under a newer token and the caller is a zombie.
	ErrFenced = errors.New("fleet: stale fencing token")
)

// Lease is one granted unit: the opaque coordinator payload plus the
// identity a worker needs to renew and complete it.
type Lease struct {
	ID       string
	Token    uint64 // fencing token, strictly increasing across grants
	Worker   string
	Deadline uint64 // lease-clock tick at which the lease expires
	Unit     any    // coordinator payload; fleet never looks inside
}

// Table tracks the active leases under one coordinator. All methods
// are safe for concurrent use; every mutation is a pure function of
// the call sequence, so two tables fed the same sequence agree on
// every grant, expiry and rejection.
type Table struct {
	mu     sync.Mutex
	ttl    uint64
	now    uint64 // logical lease clock
	fence  uint64 // last token minted; next grant gets fence+1
	leases map[string]*Lease
}

// NewTable builds an empty lease table with the given TTL in
// lease-clock ticks (<= 0 selects DefaultTTL).
func NewTable(ttl int) *Table {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Table{ttl: uint64(ttl), leases: make(map[string]*Lease)}
}

// TTL returns the lease lifetime in ticks.
func (t *Table) TTL() uint64 { return t.ttl }

// Now returns the current lease-clock reading.
func (t *Table) Now() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now
}

// Fence returns the last fencing token minted.
func (t *Table) Fence() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fence
}

// SetFence raises the fence floor so the next grant's token is larger
// than min. Recovery calls it while replaying journaled lease records:
// tokens must keep increasing across a coordinator restart or a
// pre-crash zombie could collide with a post-restart grant.
func (t *Table) SetFence(min uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if min > t.fence {
		t.fence = min
	}
}

// Grant leases unit to worker, minting the next fencing token. The
// call is an arrival: it advances the lease clock by one.
func (t *Table) Grant(worker string, unit any) Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now++
	t.fence++
	l := &Lease{
		ID:       fmt.Sprintf("l%08x", t.fence),
		Token:    t.fence,
		Worker:   worker,
		Deadline: t.now + t.ttl,
		Unit:     unit,
	}
	t.leases[l.ID] = l
	return *l
}

// Retract removes a just-granted lease before the worker has learned
// its token — the coordinator's undo when the grant could not be made
// durable (journal append failed). Unlike Complete it does not demand
// a live lease.
func (t *Table) Retract(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.leases, id)
}

// Renew extends the lease's deadline by TTL from now. The call is an
// arrival (clock +1). It fails with ErrNoLease when the lease has
// expired or completed, and ErrFenced when the token does not match.
func (t *Table) Renew(id string, token uint64) (Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now++
	l, ok := t.leases[id]
	if !ok {
		return Lease{}, ErrNoLease
	}
	if l.Token != token {
		return Lease{}, ErrFenced
	}
	l.Deadline = t.now + t.ttl
	return *l, nil
}

// Complete validates the fencing token and removes the lease,
// returning its unit payload. This is the single arbitration point:
// exactly one completion per grant can succeed, so a unit can never be
// double-counted no matter how many zombies retry. The call is an
// arrival (clock +1).
func (t *Table) Complete(id string, token uint64) (any, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now++
	l, ok := t.leases[id]
	if !ok {
		return nil, ErrNoLease
	}
	if l.Token != token {
		return nil, ErrFenced
	}
	delete(t.leases, id)
	return l.Unit, nil
}

// Advance moves the lease clock forward n ticks (n may be 0 for a pure
// sweep) and removes every lease whose deadline has passed, returning
// them oldest-token-first so the caller can requeue their units
// deterministically.
func (t *Table) Advance(n uint64) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now += n
	var expired []Lease
	for id, l := range t.leases {
		if t.now >= l.Deadline {
			expired = append(expired, *l)
			delete(t.leases, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].Token < expired[j].Token })
	return expired
}

// DrainAll removes and returns every active lease (oldest token
// first): the coordinator cancels outstanding remote work when it
// drains.
func (t *Table) DrainAll() []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Lease, 0, len(t.leases))
	for _, l := range t.leases {
		out = append(out, *l)
	}
	t.leases = make(map[string]*Lease)
	sort.Slice(out, func(i, j int) bool { return out[i].Token < out[j].Token })
	return out
}

// Active returns the number of live leases.
func (t *Table) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.leases)
}

// Workers returns the number of distinct workers holding at least one
// live lease — the service_workers_live gauge.
func (t *Table) Workers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[string]bool, len(t.leases))
	for _, l := range t.leases {
		seen[l.Worker] = true
	}
	return len(seen)
}
