package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the service's HTTP API (see the package doc for the
// route table).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("POST /api/v1/explorations", s.handleExplore)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("POST /api/v1/campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /api/v1/lease", s.handleLease)
	mux.HandleFunc("POST /api/v1/lease/{id}/renew", s.handleLeaseRenew)
	mux.HandleFunc("POST /api/v1/lease/{id}/complete", s.handleLeaseComplete)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Liveness vs readiness: /healthz is "the process is up" — true
	// from the first accepted connection, through journal replay,
	// through drain. /readyz is "route traffic here" — false while the
	// journal replays and false again the moment Drain begins, so load
	// balancers stop sending work to a server that would only 503 it.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrNotReady), errors.Is(err, ErrJournal):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuota):
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

// handleExplore accepts a design-space exploration: the grid expands
// into explore units server-side and submits as an ordinary campaign,
// sharing handleSubmit's idempotency and error mapping.
func (s *Service) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExplorationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	creq, err := req.Campaign()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status, err := s.Submit(creq)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrNotReady), errors.Is(err, ErrJournal):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuota):
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, s.results(j))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	j, _ := s.Job(id)
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleEvents streams the job's per-unit events as NDJSON: a replay
// from ?from=N (default 0, by sequence number), then a live tail until
// the job reaches a terminal state or the client goes away. Each write
// runs under a deadline: a subscriber that stops reading (its socket
// buffers full) is dropped after Config.EventWriteTimeout instead of
// wedging this handler — and, through it, a goroutine per dead client
// — forever. A dropped subscriber re-attaches with ?from=N.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errors.New("bad from parameter"))
			return
		}
		from = n
	}
	timeout := s.cfg.EventWriteTimeout
	if timeout <= 0 {
		timeout = DefaultEventWriteTimeout
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	for {
		events, more, terminal := j.eventsFrom(from)
		if len(events) > 0 {
			// One deadline covers the whole batch: a reader draining at
			// any reasonable rate never hits it, a stopped one does.
			rc.SetWriteDeadline(time.Now().Add(timeout))
			for _, e := range events {
				if enc.Encode(e) != nil {
					s.dropSubscriber(e.Job)
					return
				}
			}
			from = events[len(events)-1].Seq + 1
			if rc.Flush() != nil {
				s.dropSubscriber(events[0].Job)
				return
			}
		}
		if terminal {
			return
		}
		// Every terminal transition — including a drain canceling the
		// queued units — emits an event, so waiting on the notify
		// channel alone cannot miss the end of the job.
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// dropSubscriber counts one /events stream ended by a write failure or
// deadline — the slow-subscriber guard firing.
func (s *Service) dropSubscriber(jobID string) {
	s.counter("service_events_dropped_subscribers_total",
		"event subscribers dropped after a failed or timed-out write", nil).Inc()
	s.logf("events %s: subscriber dropped (write failed or timed out)", jobID)
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.WriteMetrics(w); err != nil {
		s.logf("metrics: %v", err)
	}
}
