// Package service implements arld, the sharded campaign service: a
// long-running HTTP/JSON server that accepts campaign requests
// (workload × configuration × seed grids), shards their units across a
// bounded pool of workers running the experiment Runner's stages, and
// uses the content-addressed artifact store as a shared cache tier, so
// concurrent clients submitting overlapping grids deduplicate
// compile/profile/trace/simulate work instead of repeating it.
//
// The API surface (all JSON, versioned under /api/v1):
//
//	POST /api/v1/campaigns            submit a campaign; 202 + job id,
//	                                  429 on queue overflow or tenant
//	                                  quota, 503 while draining or
//	                                  still replaying the journal; a
//	                                  repeated idempotency key returns
//	                                  the original job
//	GET  /api/v1/campaigns/{id}       job status (unit state counts)
//	GET  /api/v1/campaigns/{id}/events  NDJSON stream of per-unit
//	                                  completion events; replays from
//	                                  ?from=N, then tails until the job
//	                                  reaches a terminal state
//	GET  /api/v1/campaigns/{id}/results full per-unit results
//	POST /api/v1/campaigns/{id}/cancel  cancel the job's pending units
//	POST /api/v1/lease                pull one unit under a fenced
//	                                  lease (arlworker); 204 when the
//	                                  queue is empty
//	POST /api/v1/lease/{id}/renew     heartbeat a lease; 404/409 when
//	                                  it expired or was fenced
//	POST /api/v1/lease/{id}/complete  publish a leased unit's result;
//	                                  409 rejects zombie writers
//	GET  /metrics                     queue depth, in-flight units,
//	                                  dedupe hits, per-tenant counters,
//	                                  store counters (obs text form)
//	GET  /healthz                     liveness (the process is up)
//	GET  /readyz                      readiness: 503 while the journal
//	                                  is still replaying and while
//	                                  draining, 200 in between
//
// When built with a journal (see Config.Journal), every accepted job
// and unit state transition is written ahead to an append-only log, so
// a SIGKILL at any instant loses no accepted work: the restarted
// service replays the journal, restores finished units' results and
// event streams (same sequence numbers, so ?from=N resumes exactly),
// and re-enqueues incomplete units, which recompute through the
// artifact-store memo instead of from scratch.
package service

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/cpu"
)

// Unit kinds.
const (
	// KindSimulate is one (workload, machine configuration) timing
	// simulation — the Figure 8 / penalty-sweep unit.
	KindSimulate = "simulate"
	// KindFaultCampaign is one (workload, seed, runs, faults,
	// configuration) differential fault-injection campaign — the
	// arlfault unit.
	KindFaultCampaign = "faultcampaign"
	// KindExplore is one design-space point: a timing simulation whose
	// trace is built with a non-default ARPT size. Points with the
	// default ARPT normalize to KindSimulate at expansion, so frontier
	// campaigns dedupe against plain simulation campaigns.
	KindExplore = "explore"
)

// UnitSpec identifies one shardable unit of campaign work. Config
// travels as the full machine configuration (not just its display
// name): names like "(3+3)" do not encode the misprediction penalty or
// latency variants, and the unit's identity must.
type UnitSpec struct {
	Kind     string      `json:"kind"`
	Workload string      `json:"workload"`
	Config   *cpu.Config `json:"config,omitempty"`
	Seed     uint64      `json:"seed,omitempty"`   // faultcampaign plan seed
	Runs     int         `json:"runs,omitempty"`   // faultcampaign runs
	Faults   int         `json:"faults,omitempty"` // planned faults per run
	ARPT     int         `json:"arpt,omitempty"`   // explore: ARPT entries (0 = default)
}

// key is the unit's canonical dedupe identity within one server:
// every field that changes the result participates, plus the campaign
// shaping (scale, instruction budget) that store keys also carry.
func (u UnitSpec) key(scale int, maxInsts uint64) string {
	cfg := ""
	if u.Config != nil {
		cfg = u.Config.Key()
	}
	return fmt.Sprintf("%s|%s|scale=%d|n=%d|seed=%d|runs=%d|faults=%d|arpt=%d|%s",
		u.Kind, u.Workload, scale, maxInsts, u.Seed, u.Runs, u.Faults, u.ARPT, cfg)
}

// CampaignRequest is one submission: explicit units, a
// workloads × configs grid shorthand, or both. Empty Workloads with a
// non-empty Configs grid means every workload.
type CampaignRequest struct {
	Tenant   string `json:"tenant,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// IdempotencyKey, when non-empty, makes the submission replay-safe:
	// a second submission with the same (tenant, key) — a client
	// retrying after a crash or a dropped connection — returns the
	// original job instead of enqueueing a duplicate. Keys survive
	// server restarts via the journal.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Seed feeds the deterministic retry backoff jitter of this job's
	// units (not the simulation semantics, which are deterministic).
	Seed      uint64     `json:"seed,omitempty"`
	Workloads []string   `json:"workloads,omitempty"`
	Configs   []string   `json:"configs,omitempty"` // "(N+M)" grid shorthand
	Units     []UnitSpec `json:"units,omitempty"`
}

// Unit, job and event states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"

	// Job-level terminal states beyond the unit ones.
	JobComplete    = "complete"
	JobFailed      = "failed"
	JobCanceled    = "canceled"
	JobInterrupted = "interrupted" // server drained before the job finished
)

// JobStatus is the wire form of one job's progress.
type JobStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	State    string `json:"state"`
	Units    int    `json:"units"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Canceled int    `json:"canceled"`
	Deduped  int    `json:"deduped"`
}

// Terminal reports whether the job has reached a final state.
func (s JobStatus) Terminal() bool { return s.State != StateRunning }

// Event is one NDJSON progress line: a unit changed state.
type Event struct {
	Seq     int    `json:"seq"`
	Job     string `json:"job"`
	Unit    int    `json:"unit"`
	State   string `json:"state"`
	Deduped bool   `json:"deduped,omitempty"`
	Error   string `json:"error,omitempty"`
}

// UnitStatus is the wire form of one unit in a results response. The
// payload is the unit's JSON-encoded result: a cpu.Result for
// simulate units, a faultinject.Summary for faultcampaign units.
type UnitStatus struct {
	Index   int             `json:"index"`
	Spec    UnitSpec        `json:"spec"`
	State   string          `json:"state"`
	Deduped bool            `json:"deduped,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// ResultsResponse is the full outcome of one job.
type ResultsResponse struct {
	Status JobStatus    `json:"status"`
	Units  []UnitStatus `json:"units"`
}

// ParseConfigName parses a canonical configuration name —
// "(N+M[,Lcyc][,lvcSK][,<policy>][,penP])", segments in any order —
// into the machine configuration it denotes (M=0 is conventional).
// Every cpu constructor emits names in this grammar, and parsing goes
// back through cpu.Custom, so ParseConfigName(c.Name) returns a Config
// identical to c for any canonically constructed c. Used for the grid
// shorthand, arlexplore point names, and arlsim's -config flag.
func ParseConfigName(name string) (cpu.Config, error) {
	bad := func() (cpu.Config, error) {
		return cpu.Config{}, fmt.Errorf(
			`bad config %q, want "(N+M[,Lcyc][,lvcSK][,<policy>][,penP])" like "(2+0)", "(3+3)" or "(3+3,lvc8K,pen4)"`, name)
	}
	if len(name) < 2 || name[0] != '(' || name[len(name)-1] != ')' {
		return bad()
	}
	tokens := strings.Split(name[1:len(name)-1], ",")
	var p cpu.CustomParams
	if _, err := fmt.Sscanf(tokens[0], "%d+%d", &p.L1Ports, &p.LVCPorts); err != nil ||
		p.L1Ports <= 0 || p.LVCPorts < 0 || tokens[0] != fmt.Sprintf("%d+%d", p.L1Ports, p.LVCPorts) {
		return bad()
	}
	var seen [4]bool // one slot per segment kind: a canonical name never repeats one
	dup := func(kind int) bool {
		d := seen[kind]
		seen[kind] = true
		return d
	}
	for _, tok := range tokens[1:] {
		var v int
		switch {
		case tok == cache.SteerRegion || tok == cache.SteerPattern ||
			tok == cache.SteerPCHash || tok == cache.SteerNone:
			if dup(0) {
				return bad()
			}
			p.Steer = tok
		case scanToken(tok, "%dcyc", &v):
			if dup(1) {
				return bad()
			}
			p.L1Latency = v
		case scanToken(tok, "lvc%dK", &v):
			if dup(2) {
				return bad()
			}
			p.LVCSizeKB = v
		case scanToken(tok, "pen%d", &v):
			if dup(3) {
				return bad()
			}
			p.Penalty = v
		default:
			return bad()
		}
	}
	c, err := cpu.Custom(p)
	if err != nil {
		return cpu.Config{}, fmt.Errorf("bad config %q: %w", name, err)
	}
	return c, nil
}

// scanToken matches tok against a single-integer Sscanf format,
// rejecting trailing garbage (Sscanf alone accepts "4cycX").
func scanToken(tok, format string, v *int) bool {
	if _, err := fmt.Sscanf(tok, format, v); err != nil {
		return false
	}
	return tok == fmt.Sprintf(format, *v)
}
