package service

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// Client talks to one arld server. The CLIs use it for -server mode:
// they ship the campaign grid to the server, tail its progress, and
// assemble the results through the same row assemblers the local
// Runner drivers use — which is what keeps a -server report
// byte-identical to a local one.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// Tenant identifies this client for quota accounting.
	Tenant string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Log receives per-unit progress lines (nil for silence).
	Log io.Writer
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// statusError is a non-2xx server answer; it keeps the code machine-
// readable so retry policy can distinguish "the server is restarting"
// (retry with the same idempotency key) from "the request is wrong".
type statusError struct {
	code   int
	method string
	path   string
	status string
	msg    string
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("server: %s (%s)", e.msg, e.status)
	}
	return fmt.Sprintf("server: %s %s: %s", e.method, e.path, e.status)
}

// transientServerError reports whether err is worth retrying against
// the same server: a transport failure (connection refused/reset — the
// server is restarting) or a 503 from a server that is recovering its
// journal or mid-drain. 4xx rejections and decode errors are not.
func transientServerError(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var se *statusError
	return errors.As(err, &se) && se.code == http.StatusServiceUnavailable
}

// do issues one JSON request, decoding the response into out (unless
// nil) and turning non-2xx statuses into errors carrying the server's
// message.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		enc, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(enc)
	}
	req, err := http.NewRequest(method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &statusError{code: resp.StatusCode, method: method, path: path, status: resp.Status}
		var er errorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			se.msg = er.Error
		}
		return se
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Submit sends one campaign, stamping the client's tenant.
func (c *Client) Submit(req CampaignRequest) (JobStatus, error) {
	if req.Tenant == "" {
		req.Tenant = c.Tenant
	}
	var status JobStatus
	err := c.do(http.MethodPost, "/api/v1/campaigns", req, &status)
	return status, err
}

// Status fetches one job's progress.
func (c *Client) Status(id string) (JobStatus, error) {
	var status JobStatus
	err := c.do(http.MethodGet, "/api/v1/campaigns/"+id, nil, &status)
	return status, err
}

// Cancel cancels one job's pending units.
func (c *Client) Cancel(id string) (JobStatus, error) {
	var status JobStatus
	err := c.do(http.MethodPost, "/api/v1/campaigns/"+id+"/cancel", nil, &status)
	return status, err
}

// Results fetches the full per-unit outcome of one job.
func (c *Client) Results(id string) (ResultsResponse, error) {
	var resp ResultsResponse
	err := c.do(http.MethodGet, "/api/v1/campaigns/"+id+"/results", nil, &resp)
	return resp, err
}

// Metrics fetches the server's /metrics text — fleet smoke tests grep
// it for lease-expiry and fenced-reject counters.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http().Get(c.url("/metrics"))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	return string(body), nil
}

// waitRetryBudget bounds how many consecutive failed contacts Wait
// rides out before giving up — at waitRetryDelay apart, roughly half a
// minute: enough to cross a server crash, journal replay and restart,
// not enough to hang forever on a server that is simply gone.
const waitRetryBudget = 150

const waitRetryDelay = 200 * time.Millisecond

// Wait tails the job's NDJSON event stream until it reaches a terminal
// state, logging per-unit completions, then returns the final status.
// If the stream drops mid-job — a proxy timeout, or the server itself
// crashing and restarting — it reconnects from the last seen event
// sequence number and keeps waiting, as long as failures to reach the
// server stay transient and within the retry budget.
func (c *Client) Wait(id string) (JobStatus, error) {
	from := 0
	fails := 0
	for {
		next, _ := c.tail(id, from)
		if next > from {
			from = next
		}
		status, serr := c.Status(id)
		switch {
		case serr == nil:
			fails = 0
			if status.Terminal() {
				return status, nil
			}
		case !transientServerError(serr):
			return status, serr
		default:
			fails++
			if fails > waitRetryBudget {
				return status, fmt.Errorf("server unreachable for %d attempts: %w", fails, serr)
			}
		}
		// The stream dropped mid-job (server restart, proxy timeout);
		// reconnect from the last seen event.
		time.Sleep(waitRetryDelay)
	}
}

// tail streams events with sequence number ≥ from, returning the next
// resume point (one past the last event seen). A nil error means the
// stream ended with the job terminal.
func (c *Client) tail(id string, from int) (int, error) {
	resp, err := c.http().Get(c.url(fmt.Sprintf("/api/v1/campaigns/%s/events?from=%d", id, from)))
	if err != nil {
		return from, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return from, fmt.Errorf("server: events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return from, err
		}
		from = e.Seq + 1
		if c.Log != nil && e.State != StateQueued && e.State != StateRunning {
			dedup := ""
			if e.Deduped {
				dedup = " (deduped)"
			}
			if e.Error != "" {
				fmt.Fprintf(c.Log, "%s unit %d: %s%s: %s\n", e.Job, e.Unit, e.State, dedup, e.Error)
			} else {
				fmt.Fprintf(c.Log, "%s unit %d: %s%s\n", e.Job, e.Unit, e.State, dedup)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return from, err
	}
	return from, nil
}

// NewIdempotencyKey returns a fresh random idempotency key for one
// logical submission: reusing it across retries of the same submission
// is what makes a re-POST after a crash return the original job.
func NewIdempotencyKey() string {
	var b [16]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// Run submits a campaign, waits for it, and returns the results —
// erroring unless the job completed fully. The submission carries an
// idempotency key (generated here unless the caller set one) and is
// retried through transient server trouble — a restart between the
// POST and its response yields the original job, never a duplicate.
func (c *Client) Run(req CampaignRequest) (ResultsResponse, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = NewIdempotencyKey()
	}
	var status JobStatus
	var err error
	for attempt := 0; ; attempt++ {
		status, err = c.Submit(req)
		if err == nil || !transientServerError(err) || attempt >= waitRetryBudget {
			break
		}
		time.Sleep(waitRetryDelay)
	}
	if err != nil {
		return ResultsResponse{}, err
	}
	status, err = c.Wait(status.ID)
	if err != nil {
		return ResultsResponse{}, err
	}
	resp, err := c.Results(status.ID)
	if err != nil {
		return ResultsResponse{}, err
	}
	if status.State != JobComplete {
		return resp, fmt.Errorf("job %s ended %s (%d failed, %d canceled): %s",
			status.ID, status.State, status.Failed, status.Canceled, firstError(resp))
	}
	return resp, nil
}

// firstError digs the first per-unit error out of a results response.
func firstError(resp ResultsResponse) string {
	for _, u := range resp.Units {
		if u.Error != "" {
			return fmt.Sprintf("unit %d: %s", u.Index, u.Error)
		}
	}
	return "no unit error recorded"
}

// SimResults runs the given simulate units remotely and returns their
// decoded results in spec order — the same layout the Runner's
// parallelDo drivers produce, ready for the shared row assemblers.
func (c *Client) SimResults(scale int, maxInsts, seed uint64, specs []UnitSpec) ([]*cpu.Result, error) {
	resp, err := c.Run(CampaignRequest{
		Scale: scale, MaxInsts: maxInsts, Seed: seed, Units: specs,
	})
	if err != nil {
		return nil, err
	}
	results := make([]*cpu.Result, len(specs))
	for _, u := range resp.Units {
		if u.Index < 0 || u.Index >= len(results) || len(u.Result) == 0 {
			continue
		}
		var res cpu.Result
		if err := json.Unmarshal(u.Result, &res); err != nil {
			return nil, fmt.Errorf("unit %d: decoding result: %v", u.Index, err)
		}
		results[u.Index] = &res
	}
	return results, nil
}

// SimGrid builds the simulate units for a workloads × configs grid,
// workload-major — the layout AssembleFigure8 consumes.
func SimGrid(workloads []*workload.Workload, configs []cpu.Config) []UnitSpec {
	specs := make([]UnitSpec, 0, len(workloads)*len(configs))
	for _, w := range workloads {
		for i := range configs {
			specs = append(specs, UnitSpec{Kind: KindSimulate, Workload: w.Name, Config: &configs[i]})
		}
	}
	return specs
}

// Figure8 runs the timing study grid remotely and assembles the rows
// through the same assembler the local Runner driver uses, so the
// rendered report is byte-identical to a local run over the same
// artifacts.
func (c *Client) Figure8(scale int, maxInsts, seed uint64,
	workloads []*workload.Workload, configs []cpu.Config) ([]experiments.Figure8Row, error) {
	results, err := c.SimResults(scale, maxInsts, seed, SimGrid(workloads, configs))
	if err != nil {
		return nil, err
	}
	return experiments.AssembleFigure8(workloads, configs, results), nil
}

// PenaltySweep runs the E11 misprediction-penalty sweep remotely: one
// (2+0) baseline plus one stormed (3+3) unit per (workload, penalty),
// assembled through the shared assembler.
func (c *Client) PenaltySweep(scale int, maxInsts, seed uint64,
	workloads []*workload.Workload, penalties []int) ([]experiments.PenaltyRow, error) {
	np := len(penalties)
	if np == 0 {
		return nil, nil
	}
	configs := make([]cpu.Config, 0, np+1)
	configs = append(configs, cpu.Conventional(2, 2))
	for _, pen := range penalties {
		configs = append(configs, experiments.PenaltyConfig(pen))
	}
	grid, err := c.SimResults(scale, maxInsts, seed, SimGrid(workloads, configs))
	if err != nil {
		return nil, err
	}
	// SimGrid is workload-major over np+1 configs: index wi*(np+1) is
	// the baseline, the rest the penalty points. Re-split into the
	// per-unit bases/results layout AssemblePenaltySweep consumes.
	bases := make([]*cpu.Result, len(workloads)*np)
	results := make([]*cpu.Result, len(workloads)*np)
	for wi := range workloads {
		for pi := 0; pi < np; pi++ {
			bases[wi*np+pi] = grid[wi*(np+1)]
			results[wi*np+pi] = grid[wi*(np+1)+1+pi]
		}
	}
	return experiments.AssemblePenaltySweep(workloads, penalties, bases, results), nil
}

// Explore runs a design-space frontier sweep remotely: the grid goes
// to POST /api/v1/explorations (idempotent, retried through transient
// server trouble like Run), the client re-enumerates the same points
// from the same seed to decode results in unit order, and the frontier
// assembles through the same explore.Assemble a local arlexplore run
// uses — so a -server frontier artifact is byte-identical to a local
// one over the same store.
func (c *Client) Explore(scale int, maxInsts, seed uint64,
	workloads []*workload.Workload, grid explore.Grid) (*explore.Frontier, error) {
	pts, dropped, err := grid.Enumerate(seed)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(workloads))
	for i, w := range workloads {
		names[i] = w.Name
	}
	req := ExplorationRequest{
		Tenant: c.Tenant, Scale: scale, MaxInsts: maxInsts, Seed: seed,
		Workloads: names, Grid: grid, IdempotencyKey: NewIdempotencyKey(),
	}
	var status JobStatus
	for attempt := 0; ; attempt++ {
		err = c.do(http.MethodPost, "/api/v1/explorations", req, &status)
		if err == nil || !transientServerError(err) || attempt >= waitRetryBudget {
			break
		}
		time.Sleep(waitRetryDelay)
	}
	if err != nil {
		return nil, err
	}
	status, err = c.Wait(status.ID)
	if err != nil {
		return nil, err
	}
	resp, err := c.Results(status.ID)
	if err != nil {
		return nil, err
	}
	if status.State != JobComplete {
		return nil, fmt.Errorf("job %s ended %s (%d failed, %d canceled): %s",
			status.ID, status.State, status.Failed, status.Canceled, firstError(resp))
	}
	// Server expansion order is points outer, workloads inner (see
	// ExplorationRequest.Campaign).
	results := make([][]*cpu.Result, len(pts))
	for i := range results {
		results[i] = make([]*cpu.Result, len(names))
	}
	for _, u := range resp.Units {
		if u.Index < 0 || u.Index >= len(pts)*len(names) || len(u.Result) == 0 {
			continue
		}
		var res cpu.Result
		if err := json.Unmarshal(u.Result, &res); err != nil {
			return nil, fmt.Errorf("unit %d: decoding result: %v", u.Index, err)
		}
		results[u.Index/len(names)][u.Index%len(names)] = &res
	}
	return explore.Assemble(grid, seed, scale, maxInsts, names, pts, dropped, results)
}

// FaultSummaries runs the differential fault campaign remotely over
// the given workloads, returning summaries in workload order — the
// layout Runner.FaultCampaigns produces locally.
func (c *Client) FaultSummaries(scale int, maxInsts uint64, workloads []*workload.Workload,
	seed uint64, runs, faults int, cfg cpu.Config) ([]*faultinject.Summary, error) {
	specs := make([]UnitSpec, 0, len(workloads))
	for _, w := range workloads {
		specs = append(specs, UnitSpec{
			Kind: KindFaultCampaign, Workload: w.Name, Config: &cfg,
			Seed: seed, Runs: runs, Faults: faults,
		})
	}
	resp, err := c.Run(CampaignRequest{
		Scale: scale, MaxInsts: maxInsts, Seed: seed, Units: specs,
	})
	if err != nil {
		return nil, err
	}
	sums := make([]*faultinject.Summary, len(specs))
	for _, u := range resp.Units {
		if u.Index < 0 || u.Index >= len(sums) || len(u.Result) == 0 {
			continue
		}
		var sum faultinject.Summary
		if err := json.Unmarshal(u.Result, &sum); err != nil {
			return nil, fmt.Errorf("unit %d: decoding summary: %v", u.Index, err)
		}
		sums[u.Index] = &sum
	}
	return sums, nil
}
