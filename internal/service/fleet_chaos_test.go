package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/resilience/chaosnet"
	"repro/internal/service/fleet"
	"repro/internal/service/journal"
	"repro/internal/store"
)

// postJSON is the raw-HTTP half of the lease tests: it plays the
// worker's side of the wire protocol without a fleet.Worker, so tests
// can hold tokens hostage, replay them stale, and hit every status
// code deliberately.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestFleetEndToEnd runs a coordinator-only service against a real
// fleet.Worker executing through the shared dispatch: the whole
// campaign must flow through leases (no in-process workers exist to
// pick it up) and finish byte-identical to a local run.
func TestFleetEndToEnd(t *testing.T) {
	svc, client, st := testService(t, Config{
		CoordinatorOnly: true,
		LeaseTTL:        10_000, // generous: the lease clock also counts every grant/renew/complete arrival
	}, true)

	workloads := testWorkloads(t, "li")
	configs := []cpu.Config{cpu.Conventional(2, 2), cpu.Decoupled(3, 3)}
	req := CampaignRequest{MaxInsts: testMaxInsts, Units: SimGrid(workloads, configs)}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &fleet.Worker{
		Coordinator: client.Base,
		ID:          "w-e2e",
		Execute: func(_ context.Context, g fleet.LeaseGrant) (json.RawMessage, error) {
			var spec UnitSpec
			if err := json.Unmarshal(g.Spec, &spec); err != nil {
				return nil, err
			}
			r := experiments.NewRunner()
			r.Scale = g.Scale
			r.MaxInsts = g.MaxInsts
			r.Store = st
			r.Resume = true
			res, err := ExecuteUnit(r, spec)
			if err != nil {
				return nil, err
			}
			return json.Marshal(res)
		},
		RenewEvery: 50 * time.Millisecond,
		Poll:       10 * time.Millisecond,
		Parallel:   2,
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); w.Run(ctx) }()

	status, err := client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()
	if final.State != JobComplete {
		t.Fatalf("job ended %s, want %s (%d failed)", final.State, JobComplete, final.Failed)
	}

	resp, err := client.Results(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	results, err := decodeSimResults(resp, len(req.Units))
	if err != nil {
		t.Fatal(err)
	}
	fleetReport := experiments.RenderFigure8(
		experiments.AssembleFigure8(workloads, configs, results), configs)

	r := experiments.NewRunner()
	r.Workloads = workloads
	r.MaxInsts = testMaxInsts
	rows, err := r.FigureWithConfigs(configs)
	if err != nil {
		t.Fatal(err)
	}
	if local := experiments.RenderFigure8(rows, configs); fleetReport != local {
		t.Fatalf("fleet report differs from local run:\n%s\n--- vs ---\n%s", fleetReport, local)
	}

	reg := svc.Registry()
	if n := counterValue(reg, "service_leases_granted_total"); n < uint64(len(req.Units)) {
		t.Fatalf("granted %d leases, want >= %d", n, len(req.Units))
	}
	if n := counterValue(reg, "service_leases_fenced_rejects_total"); n != 0 {
		t.Fatalf("unexpected fenced rejects: %d", n)
	}
	if s := w.Stats(); s.Completed != uint64(len(req.Units)) {
		t.Fatalf("worker completed %d, want %d", s.Completed, len(req.Units))
	}
}

// TestFleetExpiryRequeueAndFencing drives the zombie-writer scenario
// by hand: a granted lease expires (the worker went dark), the unit is
// regranted to a second worker, and the first worker's late completion
// must bounce with 409 while the second worker's lands.
func TestFleetExpiryRequeueAndFencing(t *testing.T) {
	svc, client, _ := testService(t, Config{CoordinatorOnly: true, LeaseTTL: 50}, false)

	workloads := testWorkloads(t, "li")
	req := CampaignRequest{
		MaxInsts: testMaxInsts,
		Units:    SimGrid(workloads, []cpu.Config{cpu.Conventional(2, 2)}),
	}
	status, err := client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	var g1 fleet.LeaseGrant
	if code := postJSON(t, client.Base+"/api/v1/lease", fleet.LeaseRequest{Worker: "zombie"}, &g1); code != http.StatusOK {
		t.Fatalf("lease: HTTP %d", code)
	}

	// The queue is empty now: a second worker polls and gets 204.
	if code := postJSON(t, client.Base+"/api/v1/lease", fleet.LeaseRequest{Worker: "heir"}, nil); code != http.StatusNoContent {
		t.Fatalf("lease on empty queue: HTTP %d, want 204", code)
	}

	// The zombie stops heartbeating; the clock rolls past its deadline
	// and the unit goes back on the queue.
	svc.TickLeases(100)
	if n := counterValue(svc.Registry(), "service_leases_expired_total"); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}

	var g2 fleet.LeaseGrant
	if code := postJSON(t, client.Base+"/api/v1/lease", fleet.LeaseRequest{Worker: "heir"}, &g2); code != http.StatusOK {
		t.Fatalf("re-lease: HTTP %d", code)
	}
	if g2.Token <= g1.Token {
		t.Fatalf("regrant token %d not above expired token %d", g2.Token, g1.Token)
	}
	if g2.Job != g1.Job || g2.Unit != g1.Unit {
		t.Fatalf("regrant delivered %s[%d], want the expired unit %s[%d]", g2.Job, g2.Unit, g1.Job, g1.Unit)
	}

	// The zombie wakes up and renews, then completes — both with its
	// dead lease. Renew 404s (the lease is gone), completion too, and
	// the fenced-rejects counter records the zombie writer.
	if code := postJSON(t, client.Base+"/api/v1/lease/"+g1.LeaseID+"/renew",
		fleet.RenewRequest{Worker: "zombie", Token: g1.Token}, nil); code != http.StatusNotFound {
		t.Fatalf("zombie renew: HTTP %d, want 404", code)
	}
	if code := postJSON(t, client.Base+"/api/v1/lease/"+g1.LeaseID+"/complete",
		fleet.CompleteRequest{Worker: "zombie", Token: g1.Token, State: StateDone,
			Result: json.RawMessage(`{"bogus":true}`)}, nil); code != http.StatusNotFound {
		t.Fatalf("zombie complete: HTTP %d, want 404", code)
	}
	// A forged completion against the live lease with the stale token is
	// the 409 path: the lease exists, the fence says no.
	if code := postJSON(t, client.Base+"/api/v1/lease/"+g2.LeaseID+"/complete",
		fleet.CompleteRequest{Worker: "zombie", Token: g1.Token, State: StateDone,
			Result: json.RawMessage(`{"bogus":true}`)}, nil); code != http.StatusConflict {
		t.Fatalf("stale-token complete: HTTP %d, want 409", code)
	}
	if n := counterValue(svc.Registry(), "service_leases_fenced_rejects_total"); n != 2 {
		t.Fatalf("fenced rejects %d, want 2", n)
	}

	// A malformed completion must not consume the live lease.
	if code := postJSON(t, client.Base+"/api/v1/lease/"+g2.LeaseID+"/complete",
		fleet.CompleteRequest{Worker: "heir", Token: g2.Token, State: "sideways"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad-state complete: HTTP %d, want 400", code)
	}

	// The heir's genuine completion lands and finishes the job.
	if code := postJSON(t, client.Base+"/api/v1/lease/"+g2.LeaseID+"/complete",
		fleet.CompleteRequest{Worker: "heir", Token: g2.Token, State: StateDone,
			Result: json.RawMessage(`{"ipc":1}`)}, nil); code != http.StatusOK {
		t.Fatalf("heir complete: HTTP %d, want 200", code)
	}
	final, err := client.Wait(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobComplete || final.Done != 1 {
		t.Fatalf("job ended %s with %d done, want %s/1", final.State, final.Done, JobComplete)
	}
}

// TestFleetRecoverRestoresFence crashes the coordinator (new Service
// over the same journal) after a grant and verifies the restart's
// fencing tokens stay above every token the dead process handed out —
// the invariant that makes pre-crash zombies rejectable at all.
func TestFleetRecoverRestoresFence(t *testing.T) {
	dir := t.TempDir()
	fs := store.OS()
	jrn1, err := journal.OpenFS(fs, filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	svc1 := New(Config{CoordinatorOnly: true, LeaseTTL: 50, Journal: jrn1}, nil)
	if _, err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}
	workloads := testWorkloads(t, "li")
	req := CampaignRequest{
		MaxInsts: testMaxInsts,
		Units:    SimGrid(workloads, []cpu.Config{cpu.Conventional(2, 2)}),
	}
	status, err := svc1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := svc1.leaseNext("doomed")
	if err != nil || g1 == nil {
		t.Fatalf("lease: %v (grant %v)", err, g1)
	}
	jrn1.Close() // the crash: nothing else from svc1 reaches the log

	jrn2, err := journal.OpenFS(fs, filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{CoordinatorOnly: true, LeaseTTL: 50, Journal: jrn2}, nil)
	t.Cleanup(svc2.Drain)
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeued != 1 {
		t.Fatalf("recovery requeued %d units, want 1", stats.Requeued)
	}

	g2, err := svc2.leaseNext("survivor")
	if err != nil || g2 == nil {
		t.Fatalf("post-restart lease: %v (grant %v)", err, g2)
	}
	if g2.Token <= g1.Token {
		t.Fatalf("post-restart token %d not above pre-crash token %d", g2.Token, g1.Token)
	}
	if g2.Job != status.ID || g2.Unit != g1.Unit {
		t.Fatalf("restart re-delivered %s[%d], want %s[%d]", g2.Job, g2.Unit, status.ID, g1.Unit)
	}

	// The pre-crash worker publishes into the restarted coordinator:
	// rejected, counted.
	err = svc2.completeLease(g1.LeaseID, fleet.CompleteRequest{
		Worker: "doomed", Token: g1.Token, State: StateDone, Result: json.RawMessage(`{"stale":true}`)})
	if err == nil {
		t.Fatal("stale pre-crash completion was accepted")
	}
	if n := counterValue(svc2.Registry(), "service_leases_fenced_rejects_total"); n != 1 {
		t.Fatalf("fenced rejects %d, want 1", n)
	}
	if err := svc2.completeLease(g2.LeaseID, fleet.CompleteRequest{
		Worker: "survivor", Token: g2.Token, State: StateDone, Result: json.RawMessage(`{"ipc":1}`)}); err != nil {
		t.Fatalf("survivor completion: %v", err)
	}
}

// --- fleet chaos differential: helper processes -----------------------

// TestFleetCoordinatorHelper is the coordinator child process of the
// fleet chaos differential: a coordinator-only arld over a journaled
// store dir with a fast wall-clock lease ticker, serving until killed.
func TestFleetCoordinatorHelper(t *testing.T) {
	dir := os.Getenv("ARL_FLEET_DIR")
	addr := os.Getenv("ARL_FLEET_ADDR")
	if dir == "" || addr == "" {
		t.Skip("helper for the fleet chaos differential; driven by TestFleetChaosDifferential")
	}
	fs := store.OS()
	st, err := store.OpenFS(dir, fs)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	jrn, err := journal.OpenFS(fs, filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	svc := New(Config{
		CoordinatorOnly: true,
		LeaseTTL:        40, // x 25ms tick: a worker silent for ~1s loses its lease
		Journal:         jrn,
		Log:             os.Stderr,
	}, st)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	go http.Serve(ln, svc.Handler())
	go func() {
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for range tick.C {
			svc.TickLeases(1)
		}
	}()
	if _, err := svc.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	select {} // serve until the parent SIGKILLs us
}

// TestFleetWorkerHelper is one worker child process: a fleet.Worker
// over its own store-backed runners, optionally with a chaosnet fault
// plan under its HTTP transport.
func TestFleetWorkerHelper(t *testing.T) {
	coord := os.Getenv("ARL_FLEET_COORD")
	id := os.Getenv("ARL_FLEET_WORKER_ID")
	if coord == "" || id == "" {
		t.Skip("helper for the fleet chaos differential; driven by TestFleetChaosDifferential")
	}
	var st *store.Store
	if dir := os.Getenv("ARL_FLEET_WORKER_DIR"); dir != "" {
		var err error
		st, err = store.Open(dir)
		if err != nil {
			t.Fatalf("store: %v", err)
		}
	}
	var inj *chaosnet.Injector
	if spec := os.Getenv("ARL_FLEET_NETFAULTS"); spec != "" {
		plan, err := chaosnet.ParsePlan(spec)
		if err != nil {
			t.Fatalf("bad net fault plan: %v", err)
		}
		inj = chaosnet.New(plan, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, id+": "+format+"\n", args...)
		})
	}
	var mu sync.Mutex
	runners := map[runnerKey]*experiments.Runner{}
	w := &fleet.Worker{
		Coordinator: coord,
		ID:          id,
		Execute: func(_ context.Context, g fleet.LeaseGrant) (json.RawMessage, error) {
			var spec UnitSpec
			if err := json.Unmarshal(g.Spec, &spec); err != nil {
				return nil, err
			}
			k := runnerKey{g.Scale, g.MaxInsts}
			mu.Lock()
			r := runners[k]
			if r == nil {
				r = experiments.NewRunner()
				r.Scale = g.Scale
				r.MaxInsts = g.MaxInsts
				if st != nil {
					r.Store = st
					r.Resume = true
				}
				runners[k] = r
			}
			mu.Unlock()
			res, err := ExecuteUnit(r, spec)
			if err != nil {
				return nil, err
			}
			return json.Marshal(res)
		},
		HTTP:       &http.Client{Timeout: 10 * time.Second, Transport: chaosnet.Transport(nil, inj)},
		RenewEvery: 100 * time.Millisecond,
		Poll:       50 * time.Millisecond,
		Parallel:   1,
		Log:        os.Stderr,
	}
	w.Run(context.Background())
}

// fleetProc manages one helper child (coordinator or worker).
type fleetProc struct {
	t   *testing.T
	cmd *exec.Cmd
	out *strings.Builder
}

func startFleetProc(t *testing.T, run string, env map[string]string) *fleetProc {
	t.Helper()
	p := &fleetProc{t: t, out: &strings.Builder{}}
	cmd := exec.Command(os.Args[0], "-test.run=^"+run+"$", "-test.v")
	cmd.Env = os.Environ()
	for k, v := range env {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	cmd.Stdout = p.out
	cmd.Stderr = p.out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", run, err)
	}
	p.cmd = cmd
	t.Cleanup(func() {
		if p.cmd != nil && p.cmd.Process != nil {
			p.cmd.Process.Signal(syscall.SIGCONT) // a stopped child ignores SIGKILL until continued
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

func (p *fleetProc) kill() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatalf("kill: %v", err)
	}
	p.cmd.Wait()
	p.cmd = nil
}

func (p *fleetProc) signal(sig syscall.Signal) {
	p.t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		p.t.Fatalf("signal %v: %v", sig, err)
	}
}

// metricValue sums the series of one counter/gauge in an arld /metrics
// page, keeping only lines whose label set contains labelSub (empty
// matches all series).
func metricValue(t *testing.T, base, name, labelSub string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0 // coordinator mid-restart: treat as "not yet"
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var total float64
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue // a different metric sharing the prefix
		}
		if labelSub != "" && !strings.Contains(rest, labelSub) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		total += v
	}
	return total
}

func waitForMetric(t *testing.T, base, name, labelSub string, min float64, what string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if metricValue(t, base, name, labelSub) >= min {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s (%s%s >= %g)", what, name, labelSub, min)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitReady polls /readyz until the coordinator answers 200.
func waitReady(t *testing.T, base string, p *fleetProc) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never became ready\n--- output ---\n%s", p.out)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFleetChaosDifferential is the distributed-arld acceptance test:
// a campaign served by a 3-worker fleet where one worker is SIGKILLed
// mid-unit, another is SIGSTOPped until its lease expires (and later
// resumed, so its stale completion hits the fence), the third runs
// behind an injected network-fault plan, and the coordinator itself is
// SIGKILLed and restarted mid-campaign — must complete with a report
// byte-identical to an uninterrupted single-process run, a stable job
// ID, and the expiry/fencing counters showing the machinery actually
// fired.
func TestFleetChaosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and signals child processes")
	}
	coordDir := t.TempDir()
	workerDir := t.TempDir() // shared by all workers: the fleet-wide store tier
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr

	coordEnv := map[string]string{"ARL_FLEET_DIR": coordDir, "ARL_FLEET_ADDR": addr}
	coord := startFleetProc(t, "TestFleetCoordinatorHelper", coordEnv)
	waitReady(t, base, coord)

	worker := func(id, faults string) *fleetProc {
		return startFleetProc(t, "TestFleetWorkerHelper", map[string]string{
			"ARL_FLEET_COORD":      base,
			"ARL_FLEET_WORKER_ID":  id,
			"ARL_FLEET_WORKER_DIR": workerDir,
			"ARL_FLEET_NETFAULTS":  faults,
		})
	}
	w1 := worker("w1", "")
	w2 := worker("w2", "")

	// Heavy enough that a unit takes whole seconds: the kill and the
	// stop below genuinely land mid-unit.
	const fleetMaxInsts = 400_000
	workloads := testWorkloads(t, "li", "compress")
	configs := []cpu.Config{cpu.Conventional(2, 2), cpu.Decoupled(3, 3)}
	req := CampaignRequest{
		MaxInsts:       fleetMaxInsts,
		Seed:           1,
		IdempotencyKey: "fleet-chaos-1",
		Units:          SimGrid(workloads, configs),
	}
	cl := &Client{Base: base, Tenant: "fleet-chaos"}
	accepted := submitRetry(t, cl, req)
	if accepted.ID == "" {
		t.Fatal("no job id")
	}

	// Both workers pick up a unit...
	waitForMetric(t, base, "service_leases_granted_total", "worker=w1}", 1, "w1's first lease")
	waitForMetric(t, base, "service_leases_granted_total", "worker=w2}", 1, "w2's first lease")
	// ...then w1 dies mid-unit and w2 goes dark mid-unit (a partition:
	// the process is alive but nothing reaches the coordinator).
	w1.kill()
	w2.signal(syscall.SIGSTOP)

	// The third worker joins behind a seeded network-fault plan —
	// resets, half-open round trips and truncated responses on its
	// coordinator traffic.
	worker("w3", "9:3:40")

	// The coordinator's lease clock expires both dark leases and
	// requeues their units.
	waitForMetric(t, base, "service_leases_expired_total", "", 2, "the dark workers' leases to expire")

	// Now crash the coordinator and restart it over the same journal.
	coord.kill()
	coord = startFleetProc(t, "TestFleetCoordinatorHelper", coordEnv)
	waitReady(t, base, coord)

	// The idempotent re-POST must land on the recovered job.
	again := submitRetry(t, cl, req)
	if again.ID != accepted.ID {
		t.Fatalf("re-POST after coordinator restart returned job %s, original was %s", again.ID, accepted.ID)
	}

	// Wake the partitioned worker: it finishes its unit and publishes
	// with a token from before the expiry AND the restart — the zombie
	// writer. The restarted coordinator must reject it.
	w2.signal(syscall.SIGCONT)
	waitForMetric(t, base, "service_leases_fenced_rejects_total", "", 1, "the zombie completion to be fenced")

	final, err := cl.Wait(accepted.ID)
	if err != nil {
		t.Fatalf("wait: %v\n--- coordinator ---\n%s", err, coord.out)
	}
	if final.State != JobComplete {
		t.Fatalf("job ended %s, want %s (%d failed, %d canceled)\n--- coordinator ---\n%s",
			final.State, JobComplete, final.Failed, final.Canceled, coord.out)
	}

	resp, err := cl.Results(accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	results, err := decodeSimResults(resp, len(req.Units))
	if err != nil {
		t.Fatal(err)
	}
	fleetReport := experiments.RenderFigure8(
		experiments.AssembleFigure8(workloads, configs, results), configs)

	// The differential: an uninterrupted in-process run over the same
	// grid must render the same bytes — no unit lost, none
	// double-counted, none corrupted by the chaos.
	r := experiments.NewRunner()
	r.Workloads = workloads
	r.MaxInsts = fleetMaxInsts
	rows, err := r.FigureWithConfigs(configs)
	if err != nil {
		t.Fatal(err)
	}
	cleanReport := experiments.RenderFigure8(rows, configs)
	if fleetReport != cleanReport {
		t.Fatalf("fleet report differs from uninterrupted run:\n%s\n--- vs ---\n%s", fleetReport, cleanReport)
	}
}
