// Command arld is the sharded campaign service: a long-running
// HTTP/JSON server that accepts campaign requests (workload × config ×
// seed grids), shards their units across a bounded worker pool running
// the experiment Runner's stages, and uses the content-addressed
// artifact store as a shared cache tier, so concurrent clients
// submitting overlapping grids deduplicate work instead of repeating
// it. See internal/service for the API surface; arlsim, arlreport and
// arlfault consume it through their -server flag.
//
//	arld -addr localhost:8080 -store-dir /tmp/arl-store -retries 2
//
// SIGINT/SIGTERM drains gracefully: in-flight units run to completion
// and flush through the store's atomic writes, queued units end as
// canceled with their jobs marked interrupted, and the process exits
// 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	c := cliutil.New("arld")
	addr := flag.String("addr", "localhost:8080", "listen address")
	queueCap := flag.Int("queue-cap", 0,
		fmt.Sprintf("unit queue bound; submissions that do not fit get 429 (0 = %d)", service.DefaultQueueCap))
	tenantCap := flag.Int("tenant-cap", 0,
		"per-tenant in-flight unit bound; over-quota submissions get 429 (0 = the queue bound)")
	c.RunnerFlags()
	c.StoreFlags()
	c.ObsFlags("")
	flag.Parse()
	c.Start()
	ctx := c.HandleSignals()

	var st *store.Store
	if c.StoreDir != "" {
		var err error
		st, err = store.Open(c.StoreDir)
		if err != nil {
			c.Fatalf("%v", err)
		}
		if !c.Quiet {
			st.SetLog(func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "arld: "+format+"\n", args...)
			})
		}
		c.Store = st
	}

	var logw io.Writer
	if !c.Quiet {
		logw = os.Stderr
	}
	svc := service.New(service.Config{
		Workers:     c.Parallel,
		QueueCap:    *queueCap,
		TenantCap:   *tenantCap,
		UnitTimeout: c.Timeout,
		Retries:     c.Retries,
		Log:         logw,
	}, st)
	c.ObserveRegistry(svc.Registry())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		c.Fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "arld: listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		c.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Drain first — in-flight units complete and flush, queued units
	// cancel, event streams see their jobs finalize — then close the
	// listener and wait out the remaining handlers.
	svc.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "arld: shutdown: %v\n", err)
	}
	cancel()
	c.Finish(svc.Registry())
	c.Exit()
}
