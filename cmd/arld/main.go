// Command arld is the sharded campaign service: a long-running
// HTTP/JSON server that accepts campaign requests (workload × config ×
// seed grids), shards their units across a bounded worker pool running
// the experiment Runner's stages, and uses the content-addressed
// artifact store as a shared cache tier, so concurrent clients
// submitting overlapping grids deduplicate work instead of repeating
// it. Design-space frontier sweeps ride the same machinery via POST
// /api/v1/explorations (the grid expands into campaign units
// server-side, so frontier points dedupe against plain campaigns).
// See internal/service for the API surface; arlsim, arlreport,
// arlfault and arlexplore consume it through their -server flag.
//
//	arld -addr localhost:8080 -store-dir /tmp/arl-store -retries 2
//
// When -store-dir is set, arld also keeps a write-ahead job journal
// under <store-dir>/journal (override with -journal-dir): every
// accepted job and unit state transition is logged before it becomes
// visible, and a restart replays the journal — finished work is served
// from the record, incomplete units are re-enqueued — so a kill -9
// mid-campaign loses nothing. /readyz reports 503 until the replay
// finishes. -store-faults injects a deterministic storage-fault plan
// under both the store and the journal for chaos drills.
//
// SIGINT/SIGTERM drains gracefully: in-flight units run to completion
// and flush through the store's atomic writes, queued units end as
// canceled with their jobs marked interrupted, and the process exits
// 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cliutil"
	"repro/internal/resilience/chaosnet"
	"repro/internal/service"
	"repro/internal/service/journal"
	"repro/internal/store"
)

func main() {
	c := cliutil.New("arld")
	addr := flag.String("addr", "localhost:8080", "listen address")
	queueCap := flag.Int("queue-cap", 0,
		fmt.Sprintf("unit queue bound; submissions that do not fit get 429 (0 = %d)", service.DefaultQueueCap))
	tenantCap := flag.Int("tenant-cap", 0,
		"per-tenant in-flight unit bound; over-quota submissions get 429 (0 = the queue bound)")
	journalDir := flag.String("journal-dir", "",
		"write-ahead job journal directory (empty = <store-dir>/journal when -store-dir is set)")
	coordinator := flag.Bool("coordinator", false,
		"coordinator mode: no in-process workers; every unit is pulled by remote arlworkers through the lease API")
	leaseTTL := flag.Int("lease-ttl", 0,
		"remote-worker lease lifetime in lease-clock ticks (0 = fleet default)")
	leaseTick := flag.Duration("lease-tick", 500*time.Millisecond,
		"wall-clock period of one lease-clock tick (0 disables the ticker; the clock still advances on lease-API arrivals)")
	c.RunnerFlags()
	c.StoreFlags()
	c.NetFaultsFlag()
	c.ObsFlags("")
	flag.Parse()
	c.Start()
	ctx := c.HandleSignals()

	var st *store.Store
	if c.StoreDir != "" {
		st = c.OpenStore()
	}

	jdir := *journalDir
	if jdir == "" && c.StoreDir != "" {
		jdir = filepath.Join(c.StoreDir, "journal")
	}
	var jrn *journal.Journal
	if jdir != "" {
		var err error
		jrn, err = journal.OpenFS(c.StoreFS(), jdir)
		if err != nil {
			c.Fatalf("journal: %v", err)
		}
	}

	var logw io.Writer
	if !c.Quiet {
		logw = os.Stderr
	}
	svc := service.New(service.Config{
		Workers:         c.Parallel,
		QueueCap:        *queueCap,
		TenantCap:       *tenantCap,
		UnitTimeout:     c.Timeout,
		Retries:         c.Retries,
		Journal:         jrn,
		LeaseTTL:        *leaseTTL,
		CoordinatorOnly: *coordinator,
		Log:             logw,
	}, st)
	c.ObserveRegistry(svc.Registry())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		c.Fatalf("%v", err)
	}
	// -net-faults wraps the listener so accepted connections misbehave
	// per the seeded plan — the server side of the fleet chaos harness.
	ln = chaosnet.Listen(ln, c.NetInjector())
	fmt.Fprintf(os.Stderr, "arld: listening on http://%s\n", ln.Addr())
	// Server-wide timeouts: a slowloris client that dribbles its header
	// or body bytes, or never reads its response, gets its connection
	// closed instead of pinning a handler forever. The NDJSON /events
	// stream outlives WriteTimeout by design — its handler re-arms the
	// write deadline per batch through http.ResponseController, which
	// overrides the server-wide deadline on that connection.
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The lease clock's wall-clock driver. Determinism lives inside the
	// service (tests call TickLeases directly); the binary just decides
	// how fast ticks arrive.
	if *leaseTick > 0 {
		go func() {
			t := time.NewTicker(*leaseTick)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					svc.TickLeases(1)
				}
			}
		}()
	}

	// Recover after the listener is up so /healthz answers (and /readyz
	// reports 503) while a large journal replays.
	if jrn != nil {
		stats, err := svc.Recover()
		if err != nil {
			c.Fatalf("journal recovery: %v", err)
		}
		fmt.Fprintf(os.Stderr,
			"arld: journal replayed: %d jobs (%d finished), %d units requeued, %d records (%d corrupt, %d torn)\n",
			stats.Jobs, stats.Finished, stats.Requeued, stats.Replayed, stats.Corrupt, stats.Torn)
	}

	select {
	case err := <-errc:
		c.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Drain first — in-flight units complete and flush, queued units
	// cancel, event streams see their jobs finalize — then close the
	// listener and wait out the remaining handlers.
	svc.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "arld: shutdown: %v\n", err)
	}
	cancel()
	if jrn != nil {
		if err := jrn.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "arld: journal close: %v\n", err)
		}
	}
	c.Finish(svc.Registry())
	c.Exit()
}
