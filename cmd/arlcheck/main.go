// Command arlcheck lints assembled RISA programs with the
// internal/static region analyzer: stack-pointer imbalance, clobbered
// callee-saved registers, loads from never-stored stack slots,
// unreachable blocks, and memory operations through a provably
// non-address base, each reported with file:line positions from the
// assembler.
//
// Usage:
//
//	arlcheck [flags] file.s [dir ...]
//	arlcheck -workloads [-hints] [-scale N] [-n maxInsts]
//
// Directory arguments (with or without a trailing "/...") are walked
// for .s files. A file whose name contains "buggy" is treated as a
// negative fixture: arlcheck fails unless the analyzer flags it.
//
// -workloads analyzes the twelve compiled benchmark programs instead
// of files; -hints additionally runs each workload and reports the
// binary-level hint coverage and accuracy against the dynamic trace
// (the soundness check: disagreements must be zero).
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/prog"
	"repro/internal/static"
	"repro/internal/workload"
)

func main() {
	c := cliutil.New("arlcheck")
	workloads := flag.Bool("workloads", false, "lint the twelve built-in workload programs")
	hints := flag.Bool("hints", false, "with -workloads: verify binary hints against the dynamic trace")
	scale := flag.Int("scale", 0, "workload scale (0 = defaults)")
	maxInsts := flag.Uint64("n", 0, "truncate -hints runs (0 = full)")
	quiet := flag.Bool("q", false, "suppress per-file OK lines")
	c.ObsFlags("")
	flag.Parse()
	c.Start()
	defer c.Finish(nil)

	if *hints {
		*workloads = true
	}
	if *workloads == (flag.NArg() > 0) {
		fmt.Fprintln(os.Stderr, "usage: arlcheck [flags] file.s [dir ...]  |  arlcheck -workloads [-hints]")
		flag.Usage()
		os.Exit(2)
	}

	ok := true
	if *workloads {
		ok = checkWorkloads(*scale, *quiet)
		if ok && *hints {
			ok = checkHints(*scale, *maxInsts)
		}
	} else {
		files, err := collect(flag.Args())
		if err != nil {
			fmt.Fprintf(os.Stderr, "arlcheck: %v\n", err)
			os.Exit(2)
		}
		if len(files) == 0 {
			fmt.Fprintln(os.Stderr, "arlcheck: no .s files found")
			os.Exit(2)
		}
		for _, f := range files {
			if !checkFile(f, *quiet) {
				ok = false
			}
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// collect expands the argument list into .s files: plain files pass
// through, directories (a trailing "/..." is accepted) are walked.
func collect(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		path := strings.TrimSuffix(arg, "/...")
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, path)
			continue
		}
		err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".s") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// checkFile assembles and analyzes one source file. Files named
// "*buggy*" are negative fixtures: they must produce at least one
// error diagnostic.
func checkFile(path string, quiet bool) bool {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arlcheck: %v\n", err)
		return false
	}
	p, err := asm.Assemble(path, string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "arlcheck: %v\n", err)
		return false
	}
	a := static.Analyze(p)
	errs := len(a.Errors())
	negative := strings.Contains(strings.ToLower(filepath.Base(path)), "buggy")

	if negative {
		if errs == 0 {
			fmt.Printf("%s: negative fixture produced no diagnostics (want >= 1)\n", path)
			return false
		}
		if !quiet {
			fmt.Printf("%s: ok (negative fixture, %d error(s) flagged as expected)\n", path, errs)
		}
		return true
	}
	for _, d := range a.Diags {
		fmt.Println(d)
		if d.Pos.Text != "" {
			fmt.Printf("\t%s\n", d.Pos.Text)
		}
	}
	if errs > 0 {
		return false
	}
	if !quiet {
		fmt.Printf("%s: ok (%d instructions, %d hinted)\n", path, len(p.Text), hinted(a, p))
	}
	return true
}

// checkWorkloads lints every compiled benchmark program; compiled code
// must be diagnostic-free.
func checkWorkloads(scale int, quiet bool) bool {
	ok := true
	for _, w := range workload.All() {
		p, err := w.Compile(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arlcheck: %v\n", err)
			ok = false
			continue
		}
		a := static.Analyze(p)
		for _, d := range a.Diags {
			fmt.Printf("%s: %v\n", w.Name, d)
		}
		if n := len(a.Errors()); n > 0 {
			ok = false
		} else if !quiet {
			fmt.Printf("%-14s ok (%d instructions, %d hinted, sound=%v)\n",
				w.Name, len(p.Text), hinted(a, p), a.Sound())
		}
	}
	return ok
}

// checkHints runs the E14 study: every workload executed with the
// analyzer's hints checked against the dynamic region trace.
func checkHints(scale int, maxInsts uint64) bool {
	r := experiments.NewRunner()
	r.Scale = scale
	r.MaxInsts = maxInsts
	rows, err := r.StaticHintStudy()
	if err != nil {
		fmt.Fprintf(os.Stderr, "arlcheck: %v\n", err)
		return false
	}
	fmt.Print(experiments.RenderStaticHints(rows))
	ok := true
	for _, row := range rows {
		if row.Disagreements > 0 || row.AnalyzerErrs > 0 {
			fmt.Printf("%s: SOUNDNESS VIOLATION: %d disagreement(s), %d analyzer error(s)\n",
				row.Name, row.Disagreements, row.AnalyzerErrs)
			ok = false
		}
	}
	return ok
}

func hinted(a *static.Analysis, p *prog.Program) int {
	n := 0
	for i := range p.Text {
		if h := a.HintAt(i); h == prog.HintStack || h == prog.HintNonStack {
			n++
		}
	}
	return n
}
