// Command arlprofile regenerates the paper's profiling results: Table 1
// (benchmark characteristics), Figure 2 (static region-class
// breakdown), Table 2 (sliding-window region occupancy) and the §3.3
// stack-cache hit-rate claim.
//
// Usage:
//
//	arlprofile [-table1] [-fig2] [-table2] [-lvc] [-w name] [-scale N] [-n maxInsts]
//	           [-parallel N]
//
// Without selection flags, every profiling experiment runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	t1 := flag.Bool("table1", false, "Table 1: instruction counts and load/store mix")
	f2 := flag.Bool("fig2", false, "Figure 2: static region-class breakdown")
	t2 := flag.Bool("table2", false, "Table 2: window occupancy mean/stddev")
	lvc := flag.Bool("lvc", false, "stack-cache hit rate (§3.3)")
	wl := flag.String("w", "", "restrict to one workload")
	scale := flag.Int("scale", 0, "workload scale (0 = defaults)")
	maxInsts := flag.Uint64("n", 0, "truncate runs (0 = full)")
	par := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	all := !*t1 && !*f2 && !*t2 && !*lvc
	r := experiments.NewRunner()
	r.Scale = *scale
	r.MaxInsts = *maxInsts
	r.Parallel = *par
	if !*quiet {
		r.Log = os.Stderr
	}
	if *wl != "" {
		w, ok := workload.ByName(*wl)
		if !ok {
			fatalf("unknown workload %q", *wl)
		}
		r.Workloads = []*workload.Workload{w}
	}

	if all || *t1 {
		rows, err := r.Table1()
		check(err)
		fmt.Println(experiments.RenderTable1(rows))
	}
	if all || *f2 {
		rows, err := r.Figure2()
		check(err)
		fmt.Println(experiments.RenderFigure2(rows))
	}
	if all || *t2 {
		rows, err := r.Table2()
		check(err)
		fmt.Println(experiments.RenderTable2(rows))
	}
	if all || *lvc {
		rows, err := r.LVCHitRate()
		check(err)
		fmt.Println(experiments.RenderLVC(rows))
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "arlprofile: "+format+"\n", args...)
	os.Exit(1)
}
