// Command arlprofile regenerates the paper's profiling results: Table 1
// (benchmark characteristics), Figure 2 (static region-class
// breakdown), Table 2 (sliding-window region occupancy) and the §3.3
// stack-cache hit-rate claim.
//
// Usage:
//
//	arlprofile [-table1] [-fig2] [-table2] [-lvc] [-w name] [-scale N] [-n maxInsts]
//	           [-parallel N]
//
// Without selection flags, every profiling experiment runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	c := cliutil.New("arlprofile")
	t1 := flag.Bool("table1", false, "Table 1: instruction counts and load/store mix")
	f2 := flag.Bool("fig2", false, "Figure 2: static region-class breakdown")
	t2 := flag.Bool("table2", false, "Table 2: window occupancy mean/stddev")
	lvc := flag.Bool("lvc", false, "stack-cache hit rate (§3.3)")
	c.WorkloadFlags(0)
	c.RunnerFlags()
	c.SeedFlag(1)
	c.StoreFlags()
	c.ObsFlags("")
	flag.Parse()
	c.Start()

	all := !*t1 && !*f2 && !*t2 && !*lvc
	c.HandleSignals()
	r := c.Runner()

	if all || *t1 {
		rows, err := r.Table1()
		check(c, err)
		fmt.Println(experiments.RenderTable1(rows))
	}
	if all || *f2 {
		rows, err := r.Figure2()
		check(c, err)
		fmt.Println(experiments.RenderFigure2(rows))
	}
	if all || *t2 {
		rows, err := r.Table2()
		check(c, err)
		fmt.Println(experiments.RenderTable2(rows))
	}
	if all || *lvc {
		rows, err := r.LVCHitRate()
		check(c, err)
		fmt.Println(experiments.RenderLVC(rows))
	}
	if errs := r.Errors(); len(errs) > 0 {
		fmt.Print(experiments.RenderWorkloadErrors(errs))
	}
	c.Finish(r.Obs)
	c.Exit()
}

func check(c *cliutil.Common, err error) {
	if err != nil {
		if c.Interrupted() {
			os.Exit(cliutil.ExitInterrupted)
		}
		c.Fatalf("%v", err)
	}
}
