// Command arlreport runs every experiment in DESIGN.md's index (E1-E11
// plus the E14 binary-hint, E15 fault-storm and E16 frontier studies)
// over all twelve workloads and prints the full paper-vs-measured data
// set used to populate EXPERIMENTS.md.
//
// Usage:
//
//	arlreport [-scale N] [-n maxInsts] [-skip-timing] [-parallel N] [-timeout D]
//	          [-metrics file.json] [-cpuprofile f] [-pprof addr]
//	          [-server http://host:port [-tenant name]]
//
// The timing study (E7, E11, E15) dominates the run time; -skip-timing
// restricts the report to the profiling and prediction experiments.
// With -server, the E7/E11 grids are submitted to a running arld
// instead of simulated in-process — the assembled sections are
// byte-identical to a local run — while everything else (including the
// E15 storm study, which instruments the simulation) stays local.
// -timeout arms a per-workload watchdog and degrades gracefully: a
// workload that cannot finish a stage in time is reported in a
// "workload errors" section instead of aborting the whole report.
//
// Every run writes a schema-validated metrics artifact (default
// results/arlreport.metrics.json; -metrics "" disables) holding every
// counter of every simulation performed, and ends with a run-statistics
// table: per-workload trace build time and simulated cycles per second.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/explore"
)

func main() {
	c := cliutil.New("arlreport")
	skipTiming := flag.Bool("skip-timing", false, "skip the Figure 8 / penalty / storm studies")
	c.WorkloadFlags(0)
	c.RunnerFlags()
	c.SeedFlag(1)
	c.StoreFlags()
	c.ServerFlags()
	c.ObsFlags("results/arlreport.metrics.json")
	flag.Parse()
	c.Start()

	c.HandleSignals()
	r := c.Runner()

	start := time.Now()
	section := func(title string) {
		fmt.Printf("\n============ %s ============\n\n", title)
	}
	// check aborts on a hard failure; an interruption instead flushes
	// the artifacts of the work already finished (a later -resume run
	// picks up from there) and exits with the distinct interrupted
	// status.
	check := func(err error) {
		if err == nil {
			return
		}
		if c.Interrupted() {
			fmt.Fprintf(os.Stderr, "arlreport: interrupted; flushing completed artifacts\n")
			c.Finish(r.Obs)
			os.Exit(cliutil.ExitInterrupted)
		}
		c.Fatalf("%v", err)
	}

	section("E1: Table 1")
	t1, err := r.Table1()
	check(err)
	fmt.Print(experiments.RenderTable1(t1))

	section("E2: Figure 2")
	f2, err := r.Figure2()
	check(err)
	fmt.Print(experiments.RenderFigure2(f2))

	section("E3: Table 2")
	t2, err := r.Table2()
	check(err)
	fmt.Print(experiments.RenderTable2(t2))

	section("E4/E5/E6/E9: predictor study")
	study, err := r.RunPredictorStudy()
	check(err)
	fmt.Print(experiments.RenderFigure4(study.Figure4))
	fmt.Println()
	fmt.Print(experiments.RenderTable3(study.Table3))
	fmt.Println()
	fmt.Print(experiments.RenderFigure5(study.Figure5))
	fmt.Println()
	fmt.Print(experiments.RenderAblation(study.Ablation))

	section("E8: LVC hit rate")
	lvc, err := r.LVCHitRate()
	check(err)
	fmt.Print(experiments.RenderLVC(lvc))

	section("E10: context sweep")
	ctx, err := r.ContextSweep([]int{0, 8, 16}, []int{0, 7, 24})
	check(err)
	fmt.Print(experiments.RenderContextSweep(ctx))

	section("E14: binary-level static hints")
	sh, err := r.StaticHintStudy()
	check(err)
	fmt.Print(experiments.RenderStaticHints(sh))

	if !*skipTiming {
		// The E7/E11 grids are pure (workload, config) simulation units,
		// so -server can shard them across an arld; the shared
		// assemblers keep the sections byte-identical either way.
		section("E7: Figure 8")
		var f8 []experiments.Figure8Row
		if c.Server != "" {
			f8, err = c.ServiceClient().Figure8(c.Scale, c.MaxInsts, c.Seed, r.Workloads, cpu.Figure8Configs())
		} else {
			f8, err = r.Figure8()
		}
		check(err)
		fmt.Print(experiments.RenderFigure8(f8, cpu.Figure8Configs()))

		section("E11: misprediction penalty sweep")
		var pen []experiments.PenaltyRow
		if c.Server != "" {
			pen, err = c.ServiceClient().PenaltySweep(c.Scale, c.MaxInsts, c.Seed, r.Workloads, []int{1, 4, 16})
		} else {
			pen, err = r.PenaltySweep([]int{1, 4, 16})
		}
		check(err)
		fmt.Print(experiments.RenderPenaltySweep(pen))

		section("E15: misprediction storm / recovery penalty study")
		storm, err := r.RecoveryStorm(1, []float64{0, 0.01, 0.05}, []int{2, 8, 16})
		check(err)
		fmt.Print(experiments.RenderRecoveryStorm(storm))

		// E16 generalizes Figure 8 from its eight fixed machines to a
		// ranked design-space frontier; the port grid overlaps the E7
		// configurations, so those points come straight out of the memo.
		section("E16: design-space frontier")
		grid := explore.Grid{L1Ports: []int{2, 3, 4}, LVCPorts: []int{0, 2, 3}}
		var front *explore.Frontier
		if c.Server != "" {
			front, err = c.ServiceClient().Explore(c.Scale, c.MaxInsts, c.Seed, r.Workloads, grid)
		} else {
			front, err = explore.Search(r, grid, c.Seed)
		}
		check(err)
		fmt.Print(explore.RenderFrontier(front))
	}

	if errs := r.Errors(); len(errs) > 0 {
		section("workload errors")
		fmt.Print(experiments.RenderWorkloadErrors(errs))
	}

	section("run statistics")
	experiments.RenderRunStats(os.Stdout, r.RunStats())

	c.Finish(r.Obs)
	fmt.Fprintf(os.Stderr, "\narlreport: completed in %s\n", time.Since(start).Round(time.Second))
	c.Exit()
}
