// Command arlrun executes a MiniC (.c) or RISA assembly (.s) program on
// the functional simulator and reports its exit code and run statistics.
//
// Usage:
//
//	arlrun [-n maxInsts] [-v] file.{c,s}
//	arlrun -workload 130.li [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/cliutil"
	"repro/internal/minicc"
	"repro/internal/prog"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	c := cliutil.New("arlrun")
	maxInsts := flag.Uint64("n", 0, "instruction budget (0 = default)")
	verbose := flag.Bool("v", false, "print per-region reference counts")
	wl := flag.String("workload", "", "run a built-in workload")
	scale := flag.Int("scale", 0, "workload scale (0 = default)")
	c.ObsFlags("")
	flag.Parse()
	c.Start()
	defer c.Finish(nil)

	p, err := load(*wl, *scale)
	if err != nil {
		c.Fatalf("%v", err)
	}
	m, err := vm.New(vm.Config{Program: p, Out: os.Stdout})
	if err != nil {
		c.Fatalf("%v", err)
	}
	if *maxInsts > 0 {
		m.MaxInsts = *maxInsts
	}
	var regions [3]uint64
	err = m.Run(func(ev vm.Event) {
		if ev.Inst.IsMem() {
			regions[ev.Region]++
		}
	})
	if err != nil {
		c.Fatalf("%v", err)
	}
	fmt.Printf("\n[%s: exit %d after %d instructions]\n", p.Name, m.ExitCode(), m.Seq())
	if *verbose {
		total := regions[0] + regions[1] + regions[2]
		fmt.Printf("memory references: %d (data %d, heap %d, stack %d)\n",
			total, regions[0], regions[1], regions[2])
	}
}

func load(wl string, scale int) (*prog.Program, error) {
	if wl != "" {
		w, ok := workload.ByName(wl)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", wl)
		}
		return w.Compile(scale)
	}
	if flag.NArg() != 1 {
		return nil, fmt.Errorf("usage: arlrun [flags] file.{c,s} | arlrun -workload NAME")
	}
	path := flag.Arg(0)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".s") {
		return asm.Assemble(path, string(b))
	}
	return minicc.Compile(path, string(b))
}
