// Command arlexplore Pareto-searches the partitioned-cache design
// space: it expands a declarative grid of machine configurations
// (first-level ports, LVC ports and capacity, ARPT size, misprediction
// penalty, steering policy), evaluates every (point, workload) pair on
// the shared experiment harness, and writes a ranked frontier artifact
// (schema arl-frontier/v1) of IPC vs. total capacity vs. port count.
//
// Usage:
//
//	arlexplore [-l1ports 2,3,4] [-lvcports 0,2,3] [-lvcsize 4,8]
//	           [-arpt 0,1024] [-penalty 1,4] [-steer region]
//	           [-max-points N] [-o frontier.json]
//	           [-w name] [-scale N] [-n maxInsts] [-parallel N]
//	           [-seed S] [-store-dir DIR] [-resume] [-retries N]
//	arlexplore -server http://host:port [-tenant name] [...]
//
// Every point runs through the store-memoized simulation stage, so a
// sweep SIGKILLed mid-frontier and rerun with -store-dir/-resume
// recomputes only the missing points and emits a byte-identical
// artifact. With -server, the grid is submitted to a running arld
// (POST /api/v1/explorations) where overlapping points dedupe against
// other tenants' campaigns; the assembled frontier is byte-identical
// to a local run over the same store.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/explore"
	"repro/internal/store"
)

func main() {
	c := cliutil.New("arlexplore")
	l1 := flag.String("l1ports", "2,3,4", "comma list of first-partition (L1D) port counts")
	lvc := flag.String("lvcports", "0,2,3", "comma list of LVC port counts (0 = conventional, no LVC)")
	size := flag.String("lvcsize", "", "comma list of LVC capacities in KB (empty = 4)")
	arpt := flag.String("arpt", "", "comma list of ARPT entry counts (empty = 0: pipeline default)")
	pen := flag.String("penalty", "", "comma list of misprediction penalties (empty = 1)")
	steer := flag.String("steer", "", `steering policy for decoupled points: region, pattern, pchash (empty = region)`)
	maxPts := flag.Int("max-points", 0, "cap the sweep with a seeded sample of the grid (0 = full cross product)")
	out := flag.String("o", "", "write the ranked frontier artifact (JSON) to this file (empty = stdout table only)")
	c.WorkloadFlags(0)
	c.RunnerFlags()
	c.SeedFlag(1)
	c.StoreFlags()
	c.ServerFlags()
	c.ObsFlags("")
	flag.Parse()
	c.Start()

	grid := explore.Grid{Steer: *steer, MaxPoints: *maxPts}
	var err error
	if grid.L1Ports, err = intList(*l1); err != nil {
		c.Fatalf("-l1ports: %v", err)
	}
	if grid.LVCPorts, err = intList(*lvc); err != nil {
		c.Fatalf("-lvcports: %v", err)
	}
	if grid.LVCSizeKB, err = intList(*size); err != nil {
		c.Fatalf("-lvcsize: %v", err)
	}
	if grid.ARPTEntries, err = intList(*arpt); err != nil {
		c.Fatalf("-arpt: %v", err)
	}
	if grid.Penalties, err = intList(*pen); err != nil {
		c.Fatalf("-penalty: %v", err)
	}

	var f *explore.Frontier
	if c.Server != "" {
		cl := c.ServiceClient()
		f, err = cl.Explore(c.Scale, c.MaxInsts, c.Seed, c.Workloads(), grid)
		if err != nil {
			c.Fatalf("%v", err)
		}
		fmt.Print(explore.RenderFrontier(f))
		writeArtifact(c, f, *out)
		c.Finish(nil)
		return
	}

	c.HandleSignals()
	r := c.Runner()
	f, err = explore.Search(r, grid, c.Seed)
	if err != nil {
		c.Fatalf("%v", err)
	}
	fmt.Print(explore.RenderFrontier(f))
	writeArtifact(c, f, *out)
	c.Finish(r.Obs)
	c.Exit()
}

// writeArtifact encodes, schema-validates and atomically writes the
// frontier — a crash mid-write leaves the previous artifact intact,
// and arlexplore can never emit a file arlmetrics would reject.
func writeArtifact(c *cliutil.Common, f *explore.Frontier, path string) {
	if path == "" {
		return
	}
	b, err := explore.Encode(f)
	if err != nil {
		c.Fatalf("%v", err)
	}
	if err := explore.ValidateFrontier(b); err != nil {
		c.Fatalf("frontier does not validate against its own schema: %v", err)
	}
	if err := store.WriteFileAtomic(path, b, 0o644); err != nil {
		c.Fatalf("%s: %v", path, err)
	}
	if !c.Quiet {
		fmt.Printf("frontier artifact written to %s\n", path)
	}
}

// intList parses a comma-separated list of non-negative integers; an
// empty string is an empty list (the grid dimension's default).
func intList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q", p)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative list element %d", v)
		}
		out[i] = v
	}
	return out, nil
}
