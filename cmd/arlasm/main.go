// Command arlasm assembles a RISA assembly file and prints a summary or
// disassembly of the linked image.
//
// Usage:
//
//	arlasm [-d] file.s
//
// With -d the text segment is disassembled with addresses and symbols.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/cliutil"
)

func main() {
	c := cliutil.New("arlasm")
	dis := flag.Bool("d", false, "disassemble the text segment")
	flag.Parse()
	if flag.NArg() != 1 {
		c.Fatalf("usage: arlasm [-d] file.s")
	}
	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		c.Fatalf("%v", err)
	}
	p, err := asm.Assemble(flag.Arg(0), string(b))
	if err != nil {
		c.Fatalf("%v", err)
	}
	if !*dis {
		fmt.Printf("%s: %d instructions, %d data bytes, %d symbols, entry %#x\n",
			p.Name, len(p.Text), len(p.Data), len(p.Syms), p.Entry)
		return
	}
	symAt := map[uint32][]string{}
	for _, s := range p.Syms {
		symAt[s.Addr] = append(symAt[s.Addr], s.Name)
	}
	for i, in := range p.Text {
		pc := p.Index2PC(i)
		for _, s := range symAt[pc] {
			fmt.Printf("%s:\n", s)
		}
		fmt.Printf("  %08x:  %08x  %s\n", pc, p.Words[i], in)
	}
}
