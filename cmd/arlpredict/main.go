// Command arlpredict regenerates the paper's prediction studies:
// Figure 4 (scheme accuracy), Table 3 (ARPT occupancy per context),
// Figure 5 (accuracy vs table size, with and without compiler
// information), plus the 2-bit and context-width ablations.
//
// Usage:
//
//	arlpredict [-fig4] [-table3] [-fig5] [-ablation2bit] [-ablationctx]
//	           [-w name] [-scale N] [-n maxInsts] [-parallel N]
package main

import (
	"flag"
	"fmt"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	c := cliutil.New("arlpredict")
	f4 := flag.Bool("fig4", false, "Figure 4: per-scheme accuracy")
	t3 := flag.Bool("table3", false, "Table 3: unlimited-ARPT occupancy")
	f5 := flag.Bool("fig5", false, "Figure 5: accuracy vs ARPT size / hints")
	ab2 := flag.Bool("ablation2bit", false, "1-bit vs 2-bit ablation")
	abc := flag.Bool("ablationctx", false, "context-width sweep")
	c.WorkloadFlags(0)
	c.RunnerFlags()
	c.SeedFlag(1)
	c.StoreFlags()
	c.ObsFlags("")
	flag.Parse()
	c.Start()

	all := !*f4 && !*t3 && !*f5 && !*ab2 && !*abc
	c.HandleSignals()
	r := c.Runner()

	if all || *f4 || *t3 || *f5 || *ab2 {
		study, err := r.RunPredictorStudy()
		if err != nil {
			c.Fatalf("%v", err)
		}
		if all || *f4 {
			fmt.Println(experiments.RenderFigure4(study.Figure4))
		}
		if all || *t3 {
			fmt.Println(experiments.RenderTable3(study.Table3))
		}
		if all || *f5 {
			fmt.Println(experiments.RenderFigure5(study.Figure5))
		}
		if all || *ab2 {
			fmt.Println(experiments.RenderAblation(study.Ablation))
		}
	}
	if all || *abc {
		rows, err := r.ContextSweep([]int{0, 4, 8, 16}, []int{0, 7, 15, 24})
		if err != nil {
			c.Fatalf("%v", err)
		}
		fmt.Println(experiments.RenderContextSweep(rows))
	}
	if errs := r.Errors(); len(errs) > 0 {
		fmt.Print(experiments.RenderWorkloadErrors(errs))
	}
	c.Finish(r.Obs)
	c.Exit()
}
