// Command arlpredict regenerates the paper's prediction studies:
// Figure 4 (scheme accuracy), Table 3 (ARPT occupancy per context),
// Figure 5 (accuracy vs table size, with and without compiler
// information), plus the 2-bit and context-width ablations.
//
// Usage:
//
//	arlpredict [-fig4] [-table3] [-fig5] [-ablation2bit] [-ablationctx]
//	           [-w name] [-scale N] [-n maxInsts] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	f4 := flag.Bool("fig4", false, "Figure 4: per-scheme accuracy")
	t3 := flag.Bool("table3", false, "Table 3: unlimited-ARPT occupancy")
	f5 := flag.Bool("fig5", false, "Figure 5: accuracy vs ARPT size / hints")
	ab2 := flag.Bool("ablation2bit", false, "1-bit vs 2-bit ablation")
	abc := flag.Bool("ablationctx", false, "context-width sweep")
	wl := flag.String("w", "", "restrict to one workload")
	scale := flag.Int("scale", 0, "workload scale (0 = defaults)")
	maxInsts := flag.Uint64("n", 0, "truncate runs (0 = full)")
	par := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	all := !*f4 && !*t3 && !*f5 && !*ab2 && !*abc
	r := experiments.NewRunner()
	r.Scale = *scale
	r.MaxInsts = *maxInsts
	r.Parallel = *par
	if !*quiet {
		r.Log = os.Stderr
	}
	if *wl != "" {
		w, ok := workload.ByName(*wl)
		if !ok {
			fatalf("unknown workload %q", *wl)
		}
		r.Workloads = []*workload.Workload{w}
	}

	if all || *f4 || *t3 || *f5 || *ab2 {
		study, err := r.RunPredictorStudy()
		if err != nil {
			fatalf("%v", err)
		}
		if all || *f4 {
			fmt.Println(experiments.RenderFigure4(study.Figure4))
		}
		if all || *t3 {
			fmt.Println(experiments.RenderTable3(study.Table3))
		}
		if all || *f5 {
			fmt.Println(experiments.RenderFigure5(study.Figure5))
		}
		if all || *ab2 {
			fmt.Println(experiments.RenderAblation(study.Ablation))
		}
	}
	if all || *abc {
		rows, err := r.ContextSweep([]int{0, 4, 8, 16}, []int{0, 7, 15, 24})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(experiments.RenderContextSweep(rows))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "arlpredict: "+format+"\n", args...)
	os.Exit(1)
}
