// Command arlfault runs seeded fault-injection campaigns against the
// memory pipeline and differentially validates every run against the
// functional VM's golden digest: timing-level faults (forced ARPT
// mispredictions, predictor bit flips, cache-port drops, latency
// perturbation) must never change architectural results, and injected
// architectural faults must surface as structured vm.FaultErrors.
//
// Output is deterministic: the same seed reproduces the same campaign
// byte for byte. The exit status is 1 if any run diverged.
//
// Usage:
//
//	arlfault [-seed N] [-campaign N] [-faults N] [-w name] [-scale N] [-n maxInsts] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed (same seed, same campaign, same output)")
	runs := flag.Int("campaign", 200, "fault runs per workload")
	faults := flag.Int("faults", 6, "planned faults per run")
	wl := flag.String("w", "", "restrict to one workload")
	scale := flag.Int("scale", 0, "workload scale (0 = defaults)")
	maxInsts := flag.Uint64("n", 30_000, "truncate runs (0 = full)")
	par := flag.Int("parallel", 0, "workloads in flight (0 = all)")
	flag.Parse()
	if *runs <= 0 || *faults <= 0 {
		fatalf("-campaign and -faults must be positive")
	}

	workloads := workload.All()
	if *wl != "" {
		w, ok := workload.ByName(*wl)
		if !ok {
			fatalf("unknown workload %q", *wl)
		}
		workloads = []*workload.Workload{w}
	}
	cfg := cpu.Decoupled(3, 3)

	summaries := make([]*faultinject.Summary, len(workloads))
	errs := make([]error, len(workloads))
	workers := *par
	if workers <= 0 || workers > len(workloads) {
		workers = len(workloads)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, w := range workloads {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, w *workload.Workload) {
			defer wg.Done()
			defer func() { <-sem }()
			p, err := w.Compile(*scale)
			if err != nil {
				errs[i] = err
				return
			}
			summaries[i], errs[i] = faultinject.RunCampaign(
				p, w.Name, *seed, *runs, *faults, *maxInsts, cfg)
		}(i, w)
	}
	wg.Wait()

	fmt.Printf("arlfault: differential fault campaign, seed=%d, %d runs x %d faults per workload, config %s\n\n",
		*seed, *runs, *faults, cfg.Name)
	var totalRuns, fired, aborted, divergent int
	var recoveries uint64
	for i := range workloads {
		if errs[i] != nil {
			fatalf("%s: %v", workloads[i].Name, errs[i])
		}
		s := summaries[i]
		fmt.Print(s)
		totalRuns += s.Runs
		fired += s.Fired
		aborted += s.Aborted
		divergent += s.Divergent
		recoveries += s.Recoveries
	}
	fmt.Printf("\ntotal: %d runs, %d fired (%.1f%%), %d structured aborts, %d recoveries, %d divergences\n",
		totalRuns, fired, 100*float64(fired)/float64(totalRuns), aborted, recoveries, divergent)
	if divergent > 0 {
		fmt.Println("FAIL: architectural divergence detected")
		os.Exit(1)
	}
	fmt.Println("PASS: all faulted runs architecturally equivalent or cleanly aborted")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "arlfault: "+format+"\n", args...)
	os.Exit(1)
}
