// Command arlfault runs seeded fault-injection campaigns against the
// memory pipeline and differentially validates every run against the
// functional VM's golden digest: timing-level faults (forced ARPT
// mispredictions, predictor bit flips, cache-port drops, latency
// perturbation) must never change architectural results, and injected
// architectural faults must surface as structured vm.FaultErrors.
//
// Output is deterministic: the same seed reproduces the same campaign
// byte for byte. The exit status is 1 if any run diverged.
//
// Usage:
//
//	arlfault [-seed N] [-campaign N] [-faults N] [-w name] [-scale N] [-n maxInsts] [-parallel N]
//	arlfault -server http://host:port [-tenant name] [-seed N] [-campaign N] [-faults N]
//
// The campaigns run through the experiment Runner, so -store-dir,
// -resume, -retries and -timeout behave exactly as in arlsim; with
// -server they are submitted to a running arld instead, and the
// rendered report is byte-identical to a local run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

func main() {
	c := cliutil.New("arlfault")
	runs := flag.Int("campaign", 200, "fault runs per workload")
	faults := flag.Int("faults", 6, "planned faults per run")
	c.WorkloadFlags(30_000)
	c.SeedFlag(1)
	c.RunnerFlags()
	c.StoreFlags()
	c.ServerFlags()
	c.ObsFlags("")
	flag.Parse()
	c.Start()
	if *runs <= 0 || *faults <= 0 {
		c.Fatalf("-campaign and -faults must be positive")
	}

	cfg := cpu.Decoupled(3, 3)
	var summaries []*faultinject.Summary
	var reg *obs.Registry

	if c.Server != "" {
		var err error
		summaries, err = c.ServiceClient().FaultSummaries(
			c.Scale, c.MaxInsts, c.Workloads(), c.Seed, *runs, *faults, cfg)
		if err != nil {
			c.Fatalf("%v", err)
		}
		kept := summaries[:0]
		for _, s := range summaries {
			if s != nil {
				kept = append(kept, s)
			}
		}
		summaries = kept
	} else {
		c.HandleSignals()
		r := c.Runner()
		var err error
		summaries, err = r.FaultCampaigns(c.Seed, *runs, *faults, cfg)
		if err != nil {
			if c.Interrupted() {
				fmt.Fprintln(os.Stderr, "arlfault: interrupted; completed campaigns are in the store")
				c.Finish(r.Obs)
				os.Exit(cliutil.ExitInterrupted)
			}
			c.Fatalf("%v", err)
		}
		reg = r.Obs
		if errs := r.Errors(); len(errs) > 0 {
			for _, we := range errs {
				fmt.Fprintf(os.Stderr, "arlfault: %v\n", we)
			}
		}
	}

	fmt.Printf("arlfault: differential fault campaign, seed=%d, %d runs x %d faults per workload, config %s\n\n",
		c.Seed, *runs, *faults, cfg.Name)
	var totalRuns, fired, aborted, divergent int
	var recoveries uint64
	for _, s := range summaries {
		fmt.Print(s)
		totalRuns += s.Runs
		fired += s.Fired
		aborted += s.Aborted
		divergent += s.Divergent
		recoveries += s.Recoveries
		if reg != nil {
			l := obs.Labels{"workload": s.Workload}
			reg.Counter("fault_runs_total", "differential fault runs", l).Add(uint64(s.Runs))
			reg.Counter("fault_fired_runs_total", "runs with at least one fired fault", l).Add(uint64(s.Fired))
			reg.Counter("fault_aborts_total", "correctly-surfaced architectural aborts", l).Add(uint64(s.Aborted))
			reg.Counter("fault_divergent_total", "invariant-breaking runs", l).Add(uint64(s.Divergent))
			reg.Counter("fault_recoveries_total", "completed mispredict recoveries", l).Add(s.Recoveries)
		}
	}
	if totalRuns == 0 {
		c.Fatalf("no campaigns completed")
	}
	fmt.Printf("\ntotal: %d runs, %d fired (%.1f%%), %d structured aborts, %d recoveries, %d divergences\n",
		totalRuns, fired, 100*float64(fired)/float64(totalRuns), aborted, recoveries, divergent)
	c.Finish(reg)
	if divergent > 0 {
		fmt.Println("FAIL: architectural divergence detected")
		os.Exit(1)
	}
	fmt.Println("PASS: all faulted runs architecturally equivalent or cleanly aborted")
	c.Exit()
}
