// Command arlfault runs seeded fault-injection campaigns against the
// memory pipeline and differentially validates every run against the
// functional VM's golden digest: timing-level faults (forced ARPT
// mispredictions, predictor bit flips, cache-port drops, latency
// perturbation) must never change architectural results, and injected
// architectural faults must surface as structured vm.FaultErrors.
//
// Output is deterministic: the same seed reproduces the same campaign
// byte for byte. The exit status is 1 if any run diverged.
//
// Usage:
//
//	arlfault [-seed N] [-campaign N] [-faults N] [-w name] [-scale N] [-n maxInsts] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/cliutil"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	c := cliutil.New("arlfault")
	runs := flag.Int("campaign", 200, "fault runs per workload")
	faults := flag.Int("faults", 6, "planned faults per run")
	c.WorkloadFlags(30_000)
	c.SeedFlag(1)
	flag.IntVar(&c.Parallel, "parallel", 0, "workloads in flight (0 = all)")
	c.StoreFlags()
	c.ObsFlags("")
	flag.Parse()
	c.Start()
	if *runs <= 0 || *faults <= 0 {
		c.Fatalf("-campaign and -faults must be positive")
	}

	ctx := c.HandleSignals()
	if c.StoreDir != "" {
		s, err := store.Open(c.StoreDir)
		if err != nil {
			c.Fatalf("%v", err)
		}
		c.Store = s
	}
	retry := resilience.Retry{Attempts: c.Retries + 1, Seed: c.Seed}

	workloads := c.Workloads()
	cfg := cpu.Decoupled(3, 3)
	// The campaign parameters are part of each summary's identity: a
	// record cached at one seed or run count never answers for another.
	campaignCfg := fmt.Sprintf("seed=%d runs=%d faults=%d %+v", c.Seed, *runs, *faults, cfg)
	key := func(w *workload.Workload) store.Key {
		return store.Key{Kind: "faultsummary", Workload: w.Name, Scale: c.Scale,
			MaxInsts: c.MaxInsts, Config: campaignCfg, Version: "arl/v1"}
	}

	summaries := make([]*faultinject.Summary, len(workloads))
	errs := make([]error, len(workloads))
	workers := c.Parallel
	if workers <= 0 || workers > len(workloads) {
		workers = len(workloads)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, w := range workloads {
		if ctx.Err() != nil {
			break // shutting down: start no new campaigns
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, w *workload.Workload) {
			defer wg.Done()
			defer func() { <-sem }()
			if c.Store != nil && c.Resume {
				var s faultinject.Summary
				if ok, err := c.Store.Get(key(w), &s); err == nil && ok {
					summaries[i] = &s
					return
				}
			}
			errs[i] = retry.Do(ctx, w.Name+"/faultcampaign", func(context.Context) error {
				p, err := w.Compile(c.Scale)
				if err != nil {
					return err
				}
				summaries[i], err = faultinject.RunCampaign(
					p, w.Name, c.Seed, *runs, *faults, c.MaxInsts, cfg)
				return err
			})
			if errs[i] == nil && c.Store != nil {
				if err := c.Store.Put(key(w), summaries[i]); err != nil {
					fmt.Fprintf(os.Stderr, "arlfault: store: %v\n", err)
				}
			}
		}(i, w)
	}
	wg.Wait()
	if c.Interrupted() {
		fmt.Fprintln(os.Stderr, "arlfault: interrupted; completed campaigns are in the store")
		c.Finish(nil)
		os.Exit(cliutil.ExitInterrupted)
	}

	fmt.Printf("arlfault: differential fault campaign, seed=%d, %d runs x %d faults per workload, config %s\n\n",
		c.Seed, *runs, *faults, cfg.Name)
	var reg *obs.Registry
	if c.MetricsPath != "" {
		reg = obs.NewRegistry()
	}
	var totalRuns, fired, aborted, divergent int
	var recoveries uint64
	for i := range workloads {
		if errs[i] != nil {
			c.Fatalf("%s: %v", workloads[i].Name, errs[i])
		}
		s := summaries[i]
		fmt.Print(s)
		totalRuns += s.Runs
		fired += s.Fired
		aborted += s.Aborted
		divergent += s.Divergent
		recoveries += s.Recoveries
		if reg != nil {
			l := obs.Labels{"workload": s.Workload}
			reg.Counter("fault_runs_total", "differential fault runs", l).Add(uint64(s.Runs))
			reg.Counter("fault_fired_runs_total", "runs with at least one fired fault", l).Add(uint64(s.Fired))
			reg.Counter("fault_aborts_total", "correctly-surfaced architectural aborts", l).Add(uint64(s.Aborted))
			reg.Counter("fault_divergent_total", "invariant-breaking runs", l).Add(uint64(s.Divergent))
			reg.Counter("fault_recoveries_total", "completed mispredict recoveries", l).Add(s.Recoveries)
		}
	}
	fmt.Printf("\ntotal: %d runs, %d fired (%.1f%%), %d structured aborts, %d recoveries, %d divergences\n",
		totalRuns, fired, 100*float64(fired)/float64(totalRuns), aborted, recoveries, divergent)
	c.Finish(reg)
	if divergent > 0 {
		fmt.Println("FAIL: architectural divergence detected")
		os.Exit(1)
	}
	fmt.Println("PASS: all faulted runs architecturally equivalent or cleanly aborted")
}
