// Command arlvet is the repo's multichecker: it runs the stock go vet
// passes and the six internal/lint analyzers over the given package
// patterns, and exits non-zero on any finding. CI runs it as a hard
// gate; the analyzers encode the determinism and concurrency
// invariants (byte-identical reports, no wall clock in the simulator,
// no locks across blocking I/O, context propagation, atomic access
// discipline, stable obs metric schema) that the differential tests
// otherwise only catch after the fact.
//
// Usage:
//
//	arlvet [-novet] [-list] [packages]
//	arlvet -dir path [path ...]
//
// The default package pattern is ./... . -dir analyzes plain
// directories of Go files instead of package patterns — the route to
// testdata fixture packages the go tool's wildcards skip. A finding
// is waived by annotating the flagged line (or the line above it):
//
//	//arlvet:allow <analyzer> <justification>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/lint"
)

func main() {
	novet := flag.Bool("novet", false, "skip the stock go vet passes")
	dirMode := flag.Bool("dir", false, "treat arguments as plain directories of Go files (fixture mode)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		if *dirMode {
			fmt.Fprintln(os.Stderr, "arlvet: -dir requires at least one directory")
			os.Exit(2)
		}
		args = []string{"./..."}
	}

	failed := false
	if !*novet && !*dirMode {
		cmd := exec.Command("go", append([]string{"vet"}, args...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(os.Stderr, "arlvet: running go vet: %v\n", err)
				os.Exit(2)
			}
			failed = true
		}
	}

	var pkgs []*lint.Package
	if *dirMode {
		for _, dir := range args {
			pkg, err := lint.LoadDir(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "arlvet: %v\n", err)
				os.Exit(2)
			}
			pkgs = append(pkgs, pkg)
		}
	} else {
		var err error
		pkgs, err = lint.Load(args...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arlvet: %v\n", err)
			os.Exit(2)
		}
	}

	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "arlvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}
