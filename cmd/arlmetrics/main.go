// Command arlmetrics validates and summarizes the schema'd JSON
// artifacts the other arl* commands write: per-run metrics artifacts
// (results/*.metrics.json, schema arl-metrics/v1) and ranked frontier
// artifacts from arlexplore (schema arl-frontier/v1). The artifact
// kind is dispatched on the document's "schema" field. CI uses it to
// assert that every artifact parses against its embedded JSON schema;
// -schema prints the metrics schema for external tooling.
//
// Usage:
//
//	arlmetrics file.json [file.json ...]
//	arlmetrics -schema
//
// The exit status is 1 if any artifact fails validation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/explore"
	"repro/internal/obs"
)

func main() {
	c := cliutil.New("arlmetrics")
	schema := flag.Bool("schema", false, "print the embedded metrics artifact schema and exit")
	quiet := flag.Bool("q", false, "suppress per-file summaries")
	flag.Parse()

	if *schema {
		os.Stdout.Write(obs.MetricsSchemaJSON())
		return
	}
	if flag.NArg() == 0 {
		c.Fatalf("usage: arlmetrics file.json [file.json ...] | arlmetrics -schema")
	}

	ok := true
	for _, path := range flag.Args() {
		if err := validate(path, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "arlmetrics: %s: %v\n", path, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func validate(path string, quiet bool) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Dispatch on the artifact's self-declared schema so one command
	// checks every artifact kind the repo mints.
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(doc, &head); err != nil {
		return err
	}
	if head.Schema == explore.FrontierSchema {
		return validateFrontier(path, doc, quiet)
	}
	if err := obs.ValidateMetrics(doc); err != nil {
		return err
	}
	// Schema-valid by construction from here on; decode for the summary.
	var a obs.Artifact
	if err := json.Unmarshal(doc, &a); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("%s: ok (%s, cmd %q, go %s, %.1fs wall, %d metrics)\n",
			path, a.Schema, a.Run.Cmd, a.Run.GoVersion, a.Run.WallSeconds, len(a.Metrics))
	}
	return nil
}

func validateFrontier(path string, doc []byte, quiet bool) error {
	if err := explore.ValidateFrontier(doc); err != nil {
		return err
	}
	var f explore.Frontier
	if err := json.Unmarshal(doc, &f); err != nil {
		return err
	}
	if !quiet {
		pareto := 0
		for _, p := range f.Points {
			if p.Pareto {
				pareto++
			}
		}
		fmt.Printf("%s: ok (%s, %d points, %d pareto, %d workloads, seed %d)\n",
			path, f.Schema, len(f.Points), pareto, len(f.Workloads), f.Seed)
	}
	return nil
}
