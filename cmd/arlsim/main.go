// Command arlsim regenerates the paper's Figure 8: the timing study of
// conventional (N+0) and data-decoupled (N+M) memory-pipeline
// configurations on the Table 4 machine, plus the misprediction-penalty
// ablation.
//
// Usage:
//
//	arlsim [-fig8] [-ablationpenalty] [-ablationsteer] [-ablationffwd]
//	       [-w name] [-scale N] [-n maxInsts] [-parallel N] [-timeout D]
//	arlsim -server http://host:port [-tenant name] [-fig8] [-ablationpenalty]
//	arlsim -trace-events out.json [-config "(3+3)"] [-w name | name]
//
// With -server, the timing studies (-fig8, -ablationpenalty) submit
// their units to a running arld and assemble the report from the
// returned results — byte-identical to a local run, with overlapping
// units deduplicated server-side across concurrent clients. The
// steering and fast-forward ablations instrument the simulation
// in-process and stay local.
//
// With -trace-events, arlsim runs a single workload through one
// configuration with the cycle-event tracer attached and writes a
// Chrome trace-event JSON (load it in chrome://tracing or
// ui.perfetto.dev). The run self-checks: the trace's misprediction
// detect→cancel→replay spans must match the simulator's recovery
// count.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/cpu"
	"repro/internal/decouple"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	c := cliutil.New("arlsim")
	f8 := flag.Bool("fig8", false, "Figure 8: (N+M) configuration study")
	abp := flag.Bool("ablationpenalty", false, "ARPT misprediction penalty sweep")
	abs := flag.Bool("ablationsteer", false, "steering policy ablation")
	abf := flag.Bool("ablationffwd", false, "LVAQ fast-forwarding ablation")
	cfgName := flag.String("config", "(3+3)",
		`machine configuration for -trace-events, "(N+M)" (M=0 for conventional)`)
	c.WorkloadFlags(0)
	c.RunnerFlags()
	c.SeedFlag(1)
	c.StoreFlags()
	c.ServerFlags()
	c.ObsFlags("")
	c.TraceFlags()
	flag.Parse()
	c.Start()

	if c.TraceEvents != "" {
		traceRun(c, *cfgName)
		return
	}

	all := !*f8 && !*abp && !*abs && !*abf
	if c.Server != "" {
		remoteRun(c, all || *f8, all || *abp, *abs, *abf)
		return
	}
	c.HandleSignals()
	r := c.Runner()

	if all || *f8 {
		rows, err := r.Figure8()
		if err != nil {
			c.Fatalf("%v", err)
		}
		fmt.Println(experiments.RenderFigure8(rows, cpu.Figure8Configs()))
	}
	if all || *abp {
		rows, err := r.PenaltySweep([]int{1, 4, 16})
		if err != nil {
			c.Fatalf("%v", err)
		}
		fmt.Println(experiments.RenderPenaltySweep(rows))
	}
	if all || *abs {
		rows, err := r.SteeringPolicies()
		if err != nil {
			c.Fatalf("%v", err)
		}
		fmt.Println(experiments.RenderSteering(rows))
	}
	if all || *abf {
		rows, err := r.FastForwardAblation()
		if err != nil {
			c.Fatalf("%v", err)
		}
		fmt.Println(experiments.RenderFastForward(rows))
	}
	if errs := r.Errors(); len(errs) > 0 {
		fmt.Print(experiments.RenderWorkloadErrors(errs))
	}
	c.Finish(r.Obs)
	c.Exit()
}

// remoteRun is the -server mode: the timing studies run on an arld,
// assembled through the same row assemblers the local path uses.
func remoteRun(c *cliutil.Common, f8, abp, abs, abf bool) {
	if abs || abf {
		c.Fatalf("-ablationsteer and -ablationffwd instrument the simulation in-process; drop -server to run them")
	}
	cl := c.ServiceClient()
	workloads := c.Workloads()
	if f8 {
		rows, err := cl.Figure8(c.Scale, c.MaxInsts, c.Seed, workloads, cpu.Figure8Configs())
		if err != nil {
			c.Fatalf("%v", err)
		}
		fmt.Println(experiments.RenderFigure8(rows, cpu.Figure8Configs()))
	}
	if abp {
		rows, err := cl.PenaltySweep(c.Scale, c.MaxInsts, c.Seed, workloads, []int{1, 4, 16})
		if err != nil {
			c.Fatalf("%v", err)
		}
		fmt.Println(experiments.RenderPenaltySweep(rows))
	}
	c.Finish(nil)
}

// traceRun is the -trace-events mode: one workload, one configuration,
// full cycle-event capture.
func traceRun(c *cliutil.Common, cfgName string) {
	cfg, err := service.ParseConfigName(cfgName)
	if err != nil {
		c.Fatalf("-config: %v", err)
	}
	if c.Workload == "" && flag.NArg() == 1 {
		c.Workload = flag.Arg(0)
	}
	if c.Workload == "" {
		c.Fatalf("-trace-events traces exactly one workload; name it with -w or as the argument")
	}
	w := c.Workloads()[0]
	p, err := w.Compile(c.Scale)
	if err != nil {
		c.Fatalf("%v", err)
	}
	tr, err := cpu.BuildTrace(p, cpu.TraceOptions{MaxInsts: c.MaxInsts})
	if err != nil {
		c.Fatalf("%v", err)
	}

	ring := obs.NewRing(c.TraceCap)
	rec := decouple.NewRecovery()
	opts := []cpu.Option{cpu.WithTracer(ring), cpu.WithRecovery(rec)}
	var reg *obs.Registry
	if c.MetricsPath != "" {
		reg = obs.NewRegistry()
		opts = append(opts, cpu.WithMetrics(reg, nil))
	}
	sim, err := cpu.New(cfg, opts...)
	if err != nil {
		c.Fatalf("%v", err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		c.Fatalf("%v", err)
	}

	var buf bytes.Buffer
	stats, err := obs.WriteChromeTrace(&buf, ring.Events(), obs.ChromeOptions{
		ProcessName: fmt.Sprintf("arlsim %s %s", w.Name, cfg.Name),
	})
	if err == nil {
		// Atomic temp+rename: a crash mid-write never leaves a
		// truncated trace behind.
		err = store.WriteFileAtomic(c.TraceEvents, buf.Bytes(), 0o644)
	}
	if err != nil {
		c.Fatalf("%s: %v", c.TraceEvents, err)
	}

	if d := ring.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr,
			"arlsim: ring dropped %d events (raise -trace-cap); recovery spans are never dropped\n", d)
	}
	fmt.Printf("%s %s: %d cycles, %d insts, IPC %.3f, %d recoveries\n",
		w.Name, cfg.Name, res.Cycles, res.Insts, res.IPC(), res.Recoveries)
	fmt.Printf("trace: %d events (%d op slices, %d recovery spans) -> %s\n",
		stats.Events, stats.OpSlices, stats.RecoverySpans, c.TraceEvents)
	if uint64(stats.RecoverySpans) != res.Recoveries {
		c.Fatalf("self-check failed: trace has %d recovery spans, simulator reported %d recoveries",
			stats.RecoverySpans, res.Recoveries)
	}
	if !rec.Complete() {
		c.Fatalf("self-check failed: %d recoveries left incomplete", rec.Outstanding())
	}
	c.Finish(reg)
}
