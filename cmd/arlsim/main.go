// Command arlsim regenerates the paper's Figure 8: the timing study of
// conventional (N+0) and data-decoupled (N+M) memory-pipeline
// configurations on the Table 4 machine, plus the misprediction-penalty
// ablation.
//
// Usage:
//
//	arlsim [-fig8] [-ablationpenalty] [-w name] [-scale N] [-n maxInsts] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	f8 := flag.Bool("fig8", false, "Figure 8: (N+M) configuration study")
	abp := flag.Bool("ablationpenalty", false, "ARPT misprediction penalty sweep")
	abs := flag.Bool("ablationsteer", false, "steering policy ablation")
	abf := flag.Bool("ablationffwd", false, "LVAQ fast-forwarding ablation")
	wl := flag.String("w", "", "restrict to one workload")
	scale := flag.Int("scale", 0, "workload scale (0 = defaults)")
	maxInsts := flag.Uint64("n", 0, "truncate traces (0 = full)")
	par := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0,
		"per-workload stage watchdog; implies graceful degradation (0 = off)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	all := !*f8 && !*abp && !*abs && !*abf
	r := experiments.NewRunner()
	r.Scale = *scale
	r.MaxInsts = *maxInsts
	r.Parallel = *par
	if *timeout > 0 {
		r.WorkloadTimeout = *timeout
		r.Degrade = true
	}
	if !*quiet {
		r.Log = os.Stderr
	}
	if *wl != "" {
		w, ok := workload.ByName(*wl)
		if !ok {
			fatalf("unknown workload %q", *wl)
		}
		r.Workloads = []*workload.Workload{w}
	}

	if all || *f8 {
		rows, err := r.Figure8()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(experiments.RenderFigure8(rows, cpu.Figure8Configs()))
	}
	if all || *abp {
		rows, err := r.PenaltySweep([]int{1, 4, 16})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(experiments.RenderPenaltySweep(rows))
	}
	if all || *abs {
		rows, err := r.SteeringPolicies()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(experiments.RenderSteering(rows))
	}
	if all || *abf {
		rows, err := r.FastForwardAblation()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(experiments.RenderFastForward(rows))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "arlsim: "+format+"\n", args...)
	os.Exit(1)
}
