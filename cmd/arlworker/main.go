// Command arlworker is the remote execution half of a distributed
// arld: it pulls campaign units from a coordinator over the lease API
// (POST /api/v1/lease), runs them through its own store-backed
// experiment Runner, heartbeats to keep its leases alive, and
// publishes each result with the lease's fencing token attached — so
// a worker that stalls past its lease and comes back (a zombie
// writer) has its late completion rejected with 409 instead of
// double-counting the unit.
//
//	arld -coordinator -addr :8080 -store-dir /srv/arl &
//	arlworker -coordinator http://localhost:8080 -store-dir /tmp/w1 -parallel 4
//
// Workers are cattle: SIGKILL one mid-unit and the coordinator's
// lease clock expires the lease and requeues the unit for the next
// worker, where the content-addressed store memo makes the recompute
// byte-identical. Pointing -store-dir at a shared directory turns the
// store into a fleet-wide cache tier; a private directory still
// dedupes that worker's own re-deliveries.
//
// -net-faults wraps the worker's HTTP transport in the seeded
// chaosnet plan (latency spikes, resets, half-open partitions,
// response truncation) for fleet chaos drills; the worker's retry
// and fencing paths must absorb every injected fault without losing
// or double-counting a unit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/resilience/chaosnet"
	"repro/internal/service"
	"repro/internal/service/fleet"
	"repro/internal/store"
)

func main() {
	c := cliutil.New("arlworker")
	coordinator := flag.String("coordinator", "http://localhost:8080",
		"coordinator base URL to pull leased units from")
	id := flag.String("id", "", "worker identity reported in lease requests (default: host-pid)")
	renew := flag.Duration("renew", fleet.DefaultRenewEvery, "lease heartbeat period")
	poll := flag.Duration("poll", fleet.DefaultPoll, "idle poll period when the queue is empty")
	httpTimeout := flag.Duration("http-timeout", 15*time.Second,
		"per-request timeout for coordinator calls")
	c.RunnerFlags()
	c.StoreFlags()
	c.NetFaultsFlag()
	c.ObsFlags("")
	flag.Parse()
	c.Start()
	ctx := c.HandleSignals()

	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	reg := obs.NewRegistry()
	c.ObserveRegistry(reg)

	var st *store.Store
	if c.StoreDir != "" {
		st = c.OpenStore()
	}

	// Runners are classed by the campaign shaping the coordinator hands
	// down with each grant — exactly the coordinator's own runnerKey —
	// so a worker serving two campaigns with different budgets keeps
	// their in-process memos separate while sharing one store.
	rn := &runners{c: c, reg: reg, store: st, byKey: make(map[runnerKey]*experiments.Runner)}

	w := &fleet.Worker{
		Coordinator: *coordinator,
		ID:          *id,
		Execute:     rn.execute,
		HTTP: &http.Client{
			Timeout:   *httpTimeout,
			Transport: chaosnet.Transport(nil, c.NetInjector()),
		},
		RenewEvery: *renew,
		Poll:       *poll,
		Parallel:   c.Parallel,
	}
	if !c.Quiet {
		w.Log = os.Stderr
	}

	fmt.Fprintf(os.Stderr, "arlworker: %s pulling from %s\n", *id, *coordinator)
	w.Run(ctx)
	c.Finish(reg)
	c.Exit()
}

type runnerKey struct {
	scale    int
	maxInsts uint64
}

// runners lazily builds one store-backed Runner per (scale, maxInsts)
// class, shared across the worker's parallel lease loops.
type runners struct {
	c     *cliutil.Common
	reg   *obs.Registry
	store *store.Store
	mu    sync.Mutex
	byKey map[runnerKey]*experiments.Runner
}

func (rn *runners) get(scale int, maxInsts uint64) *experiments.Runner {
	k := runnerKey{scale, maxInsts}
	rn.mu.Lock()
	defer rn.mu.Unlock()
	r := rn.byKey[k]
	if r == nil {
		r = experiments.NewRunner()
		r.Scale = scale
		r.MaxInsts = maxInsts
		r.Obs = rn.reg
		if rn.store != nil {
			r.Store = rn.store
			r.Resume = true
		}
		if rn.c.Timeout > 0 {
			r.WorkloadTimeout = rn.c.Timeout
		}
		rn.byKey[k] = r
	}
	return r
}

// execute runs one leased unit through the same dispatch the
// coordinator's in-process workers use, so a unit computes
// byte-identically wherever it lands.
func (rn *runners) execute(_ context.Context, g fleet.LeaseGrant) (json.RawMessage, error) {
	var spec service.UnitSpec
	if err := json.Unmarshal(g.Spec, &spec); err != nil {
		return nil, fmt.Errorf("bad unit spec: %w", err)
	}
	res, err := service.ExecuteUnit(rn.get(g.Scale, g.MaxInsts), spec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}
