// Command arlcc compiles a MiniC source file to RISA assembly (with
// region-hint annotations) or reports the linked program's layout.
//
// Usage:
//
//	arlcc [-S] [-o out.s] file.c
//	arlcc -workload 099.go [-scale N] [-S]
//
// With -S the generated assembly (including the ;@stack / ;@nonstack /
// ;@unknown hints of the paper's Figure 6 analysis) is written to -o or
// stdout; otherwise a summary of the linked image is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/cliutil"
	"repro/internal/minicc"
	"repro/internal/prog"
	"repro/internal/workload"
)

func main() {
	c := cliutil.New("arlcc")
	emitAsm := flag.Bool("S", false, "emit assembly instead of a summary")
	out := flag.String("o", "", "output file (default stdout)")
	wl := flag.String("workload", "", "compile a built-in workload instead of a file")
	scale := flag.Int("scale", 0, "workload scale (0 = default)")
	c.ObsFlags("")
	flag.Parse()
	c.Start()
	defer c.Finish(nil)

	var name, src string
	switch {
	case *wl != "":
		w, ok := workload.ByName(*wl)
		if !ok {
			c.Fatalf("unknown workload %q", *wl)
		}
		s := *scale
		if s <= 0 {
			s = w.DefaultScale
		}
		name, src = w.Name, w.Source(s)
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			c.Fatalf("%v", err)
		}
		name, src = flag.Arg(0), string(b)
	default:
		c.Fatalf("usage: arlcc [-S] [-o out.s] file.c | arlcc -workload NAME")
	}

	text, err := minicc.CompileToAsm(name, src)
	if err != nil {
		c.Fatalf("%v", err)
	}
	if *emitAsm {
		if *out == "" {
			fmt.Print(text)
			return
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			c.Fatalf("%v", err)
		}
		return
	}
	p, err := asm.Assemble(name, text)
	if err != nil {
		c.Fatalf("internal: %v", err)
	}
	summarize(p)
}

func summarize(p *prog.Program) {
	hints := map[prog.Hint]int{}
	mems := 0
	for i, in := range p.Text {
		if in.IsMem() {
			mems++
			hints[p.HintAt(i)]++
		}
	}
	fmt.Printf("program %s\n", p.Name)
	fmt.Printf("  text:  %d instructions (%d bytes)\n", len(p.Text), 4*len(p.Text))
	fmt.Printf("  data:  %d bytes\n", len(p.Data))
	fmt.Printf("  entry: %#x\n", p.Entry)
	fmt.Printf("  static memory instructions: %d\n", mems)
	fmt.Printf("    hinted stack:    %d\n", hints[prog.HintStack])
	fmt.Printf("    hinted nonstack: %d\n", hints[prog.HintNonStack])
	fmt.Printf("    hinted unknown:  %d\n", hints[prog.HintUnknown])
}
