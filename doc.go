// Package repro reproduces "Access Region Locality for High-Bandwidth
// Processor Memory System Design" (Cho, Yew, Lee; MICRO-32, 1999) as a
// self-contained Go library: a MiniC compiler and RISA toolchain, a
// functional simulator and region profiler, the ARPT access-region
// predictor family, and a cycle-level out-of-order timing simulator
// with data-decoupled LSQ/LVAQ memory pipelines.
//
// The root package only anchors the module; the implementation lives
// under internal/ (see DESIGN.md for the system inventory) and the
// runnable entry points under cmd/ and examples/. The benchmark file
// bench_test.go regenerates every table and figure of the paper's
// evaluation.
package repro
